/**
 * @file
 * Integration tests for the GMN models and workload tracer. The
 * central property: the WL duplicate oracle exactly predicts bitwise
 * feature equality (and thus identical similarity rows/columns) in the
 * functional models — the paper's duplicate-node observation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "gmn/model.hh"
#include "gmn/similarity.hh"
#include "gmn/workload.hh"
#include "graph/generators.hh"
#include "graph/wl_refine.hh"

namespace cegma {
namespace {

GraphPair
smallPair(uint64_t seed, NodeId n = 24)
{
    Rng rng(seed);
    Graph g = threadGraph(n, n + n / 6, rng);
    return makePairFromOriginal(g, true, rng);
}

TEST(Similarity, DotProductIsPlainGemm)
{
    Matrix x(2, 2, {1, 0, 0, 1});
    Matrix y(2, 2, {2, 3, 4, 5});
    Matrix s = similarityMatrix(x, y, SimilarityKind::DotProduct);
    EXPECT_FLOAT_EQ(s.at(0, 0), 2.0f);
    EXPECT_FLOAT_EQ(s.at(0, 1), 4.0f);
    EXPECT_FLOAT_EQ(s.at(1, 0), 3.0f);
}

TEST(Similarity, CosineBoundedAndSelfIsOne)
{
    Rng rng(5);
    Matrix x(4, 8);
    x.fillXavier(rng);
    Matrix s = similarityMatrix(x, x, SimilarityKind::Cosine);
    for (size_t i = 0; i < s.rows(); ++i) {
        EXPECT_NEAR(s.at(i, i), 1.0f, 1e-5f);
        for (size_t j = 0; j < s.cols(); ++j) {
            EXPECT_LE(s.at(i, j), 1.0f + 1e-5f);
            EXPECT_GE(s.at(i, j), -1.0f - 1e-5f);
        }
    }
}

TEST(Similarity, EuclideanIsNegativeSquaredDistance)
{
    Matrix x(1, 2, {1.0f, 2.0f});
    Matrix y(1, 2, {4.0f, 6.0f});
    Matrix s = similarityMatrix(x, y, SimilarityKind::Euclidean);
    // -((4-1)^2 + (6-2)^2) = -25
    EXPECT_FLOAT_EQ(s.at(0, 0), -25.0f);
}

TEST(Similarity, FlopsOrdering)
{
    uint64_t dot = similarityFlops(10, 20, 64, SimilarityKind::DotProduct);
    uint64_t cos = similarityFlops(10, 20, 64, SimilarityKind::Cosine);
    uint64_t euc = similarityFlops(10, 20, 64, SimilarityKind::Euclidean);
    EXPECT_LT(dot, cos);
    EXPECT_LT(dot, euc);
}

TEST(ModelConfig, TableOneShapes)
{
    const ModelConfig &li = modelConfig(ModelId::GmnLi);
    EXPECT_EQ(li.numLayers, 5u);
    EXPECT_EQ(li.similarity, SimilarityKind::Euclidean);
    EXPECT_TRUE(li.layerwiseMatching);
    EXPECT_TRUE(li.crossFeedback);
    EXPECT_EQ(li.matchUse, MatchUse::OnChipReuse);

    const ModelConfig &gs = modelConfig(ModelId::GraphSim);
    EXPECT_EQ(gs.numLayers, 3u);
    EXPECT_EQ(gs.similarity, SimilarityKind::Cosine);
    EXPECT_TRUE(gs.layerwiseMatching);
    EXPECT_FALSE(gs.crossFeedback);

    const ModelConfig &sg = modelConfig(ModelId::SimGnn);
    EXPECT_EQ(sg.numLayers, 3u);
    EXPECT_EQ(sg.similarity, SimilarityKind::DotProduct);
    EXPECT_FALSE(sg.layerwiseMatching);
}

class ModelFixture : public ::testing::TestWithParam<ModelId>
{
  public:
    static std::string
    name(const ::testing::TestParamInfo<ModelId> &info)
    {
        std::string n = modelConfig(info.param).name;
        for (auto &ch : n) {
            if (ch == '-')
                ch = '_';
        }
        return n;
    }
};

TEST_P(ModelFixture, ForwardShapes)
{
    auto model = makeModel(GetParam(), 42);
    GraphPair pair = smallPair(1);
    auto detail = model->forwardDetailed(pair);
    const ModelConfig &config = model->config();

    ASSERT_EQ(detail.xLayers.size(), config.numLayers + 1);
    ASSERT_EQ(detail.yLayers.size(), config.numLayers + 1);
    for (const Matrix &x : detail.xLayers) {
        EXPECT_EQ(x.rows(), pair.target.numNodes());
        EXPECT_EQ(x.cols(), config.nodeDim);
    }
    size_t expected_sims = config.layerwiseMatching ? config.numLayers : 1;
    ASSERT_EQ(detail.simLayers.size(), expected_sims);
    for (const Matrix &s : detail.simLayers) {
        EXPECT_EQ(s.rows(), pair.target.numNodes());
        EXPECT_EQ(s.cols(), pair.query.numNodes());
    }
    EXPECT_TRUE(std::isfinite(detail.score));
}

TEST_P(ModelFixture, DeterministicAcrossInstances)
{
    GraphPair pair = smallPair(2);
    auto a = makeModel(GetParam(), 7);
    auto b = makeModel(GetParam(), 7);
    EXPECT_DOUBLE_EQ(a->score(pair), b->score(pair));
}

TEST_P(ModelFixture, WlOracleMatchesBitwiseFeatureEquality)
{
    GraphPair pair = smallPair(3, 32);
    auto model = makeModel(GetParam(), 11);
    const ModelConfig &config = model->config();
    auto detail = model->forwardDetailed(pair);

    WlColoring wl_t = wlRefine(pair.target, config.numLayers);
    WlColoring wl_q = wlRefine(pair.query, config.numLayers);

    for (size_t level = 0; level <= config.numLayers; ++level) {
        const Matrix &x = detail.xLayers[level];
        for (NodeId u = 0; u < pair.target.numNodes(); ++u) {
            for (NodeId v = u + 1; v < pair.target.numNodes(); ++v) {
                if (wl_t.colors[level][u] == wl_t.colors[level][v]) {
                    EXPECT_TRUE(x.rowsEqual(u, v))
                        << config.name << " level " << level << " nodes "
                        << u << "," << v;
                }
            }
        }
        const Matrix &y = detail.yLayers[level];
        for (NodeId u = 0; u < pair.query.numNodes(); ++u) {
            for (NodeId v = u + 1; v < pair.query.numNodes(); ++v) {
                if (wl_q.colors[level][u] == wl_q.colors[level][v]) {
                    EXPECT_TRUE(y.rowsEqual(u, v));
                }
            }
        }
    }
}

TEST_P(ModelFixture, DuplicateRowsInSimilarityMatrices)
{
    // The paper's core claim (Fig. 6): duplicate target nodes have
    // identical similarity-matrix rows; duplicate query nodes have
    // identical columns.
    GraphPair pair = smallPair(4, 32);
    auto model = makeModel(GetParam(), 13);
    const ModelConfig &config = model->config();
    auto detail = model->forwardDetailed(pair);
    WlColoring wl_t = wlRefine(pair.target, config.numLayers);
    WlColoring wl_q = wlRefine(pair.query, config.numLayers);

    // Map each similarity matrix back to the WL level it consumed.
    std::vector<size_t> levels;
    if (config.id == ModelId::GmnLi) {
        for (unsigned l = 0; l < config.numLayers; ++l)
            levels.push_back(l);
    } else if (config.layerwiseMatching) {
        for (unsigned l = 1; l <= config.numLayers; ++l)
            levels.push_back(l);
    } else {
        levels.push_back(config.numLayers);
    }
    ASSERT_EQ(levels.size(), detail.simLayers.size());

    for (size_t k = 0; k < levels.size(); ++k) {
        const Matrix &s = detail.simLayers[k];
        size_t level = levels[k];
        for (NodeId u = 0; u < pair.target.numNodes(); ++u) {
            for (NodeId v = u + 1; v < pair.target.numNodes(); ++v) {
                if (wl_t.colors[level][u] == wl_t.colors[level][v]) {
                    EXPECT_TRUE(s.rowsEqual(u, v))
                        << config.name << " sim " << k;
                }
            }
        }
        for (NodeId u = 0; u < pair.query.numNodes(); ++u) {
            for (NodeId v = u + 1; v < pair.query.numNodes(); ++v) {
                if (wl_q.colors[level][u] == wl_q.colors[level][v]) {
                    for (size_t r = 0; r < s.rows(); ++r)
                        EXPECT_EQ(s.at(r, u), s.at(r, v));
                }
            }
        }
    }
}

TEST_P(ModelFixture, TraceMatchingLayerCount)
{
    GraphPair pair = smallPair(5);
    PairTrace trace = buildTrace(GetParam(), pair);
    const ModelConfig &config = modelConfig(GetParam());
    ASSERT_EQ(trace.layers.size(), config.numLayers);
    size_t matchings = 0;
    for (const auto &layer : trace.layers)
        matchings += layer.matching.present;
    EXPECT_EQ(matchings, config.layerwiseMatching ? config.numLayers : 1u);
}

TEST_P(ModelFixture, TraceFlopsPositiveAndConsistent)
{
    GraphPair pair = smallPair(6);
    PairTrace trace = buildTrace(GetParam(), pair);
    EXPECT_GT(trace.aggFlopsTotal(), 0u);
    EXPECT_GT(trace.combFlopsTotal(), 0u);
    EXPECT_GT(trace.matchFlopsTotal(), 0u);
    EXPECT_GT(trace.postFlops, 0u);
    EXPECT_EQ(trace.totalFlops(),
              trace.aggFlopsTotal() + trace.combFlopsTotal() +
                  trace.matchFlopsTotal() + trace.postFlops);
}

TEST_P(ModelFixture, TraceUniqueFractionBounds)
{
    GraphPair pair = smallPair(7, 64);
    PairTrace trace = buildTrace(GetParam(), pair);
    double frac = trace.uniqueMatchingFraction();
    EXPECT_GT(frac, 0.0);
    EXPECT_LE(frac, 1.0);
    EXPECT_LE(trace.uniqueMatchPairs(), trace.totalMatchPairs());
    // Thread graphs carry heavy duplication.
    EXPECT_LT(frac, 0.9);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelFixture,
                         ::testing::ValuesIn(allModels()),
                         ModelFixture::name);

TEST(Workload, MatchingWorkPairCounts)
{
    MatchingWork match;
    match.present = true;
    match.dupClassTarget = {0, 0, 1};
    match.dupClassQuery = {0, 1, 1, 2};
    match.numUniqueTarget = 2;
    match.numUniqueQuery = 3;
    EXPECT_EQ(match.totalPairs(), 12u);
    EXPECT_EQ(match.uniquePairs(), 6u);
}

TEST(Workload, BiggerGraphsMoreMatchFlops)
{
    Rng rng(9);
    Graph small_g = threadGraph(20, 24, rng);
    Graph big_g = threadGraph(80, 95, rng);
    GraphPair small_pair = makePairFromOriginal(small_g, true, rng);
    GraphPair big_pair = makePairFromOriginal(big_g, true, rng);
    PairTrace ts = buildTrace(ModelId::GraphSim, small_pair);
    PairTrace tb = buildTrace(ModelId::GraphSim, big_pair);
    EXPECT_GT(tb.matchFlopsTotal(), ts.matchFlopsTotal());
    // Matching grows quadratically, embedding linearly.
    double ratio_match = static_cast<double>(tb.matchFlopsTotal()) /
                         ts.matchFlopsTotal();
    double ratio_comb = static_cast<double>(tb.combFlopsTotal()) /
                        ts.combFlopsTotal();
    EXPECT_GT(ratio_match, ratio_comb);
}

TEST(Workload, GmnLiHasCrossFlops)
{
    GraphPair pair = smallPair(10);
    PairTrace li = buildTrace(ModelId::GmnLi, pair);
    PairTrace gs = buildTrace(ModelId::GraphSim, pair);
    EXPECT_GT(li.layers[0].matching.crossFlops, 0u);
    EXPECT_EQ(gs.layers[0].matching.crossFlops, 0u);
}

} // namespace
} // namespace cegma
