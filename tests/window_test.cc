/**
 * @file
 * Tests for the window schedulers: exact coverage invariants (every
 * arc and matching cell scheduled exactly once), miss-count ordering
 * across schemes, EMF-mask interaction, and AOE behaviour.
 */

#include <gtest/gtest.h>

#include "accel/window.hh"
#include "common/rng.hh"
#include "graph/generators.hh"
#include "graph/wl_refine.hh"

namespace cegma {
namespace {

/** The paper's Figure 5 example pair. */
struct ExamplePair
{
    Graph target = Graph::fromEdges(4, {{0, 2}, {1, 2}, {2, 3}});
    Graph query = Graph::fromEdges(
        6, {{0, 1}, {1, 2}, {2, 3}, {1, 4}, {3, 4}, {4, 5}});
};

WindowWork
exampleWork(const ExamplePair &ex, uint32_t cap = 4)
{
    WindowWork work;
    work.target = &ex.target;
    work.query = &ex.query;
    work.capNodes = cap;
    work.hasMatching = true;
    return work;
}

class AllSchedulers
    : public ::testing::TestWithParam<SchedulerKind>
{
  public:
    static std::string
    name(const ::testing::TestParamInfo<SchedulerKind> &info)
    {
        switch (info.param) {
          case SchedulerKind::SeparatePhase:
            return "SeparatePhase";
          case SchedulerKind::DoubleWindow:
            return "DoubleWindow";
          case SchedulerKind::Joint:
            return "Joint";
          case SchedulerKind::Coordinated:
            return "Coordinated";
        }
        return "?";
    }
};

TEST_P(AllSchedulers, FullCoverageOnExample)
{
    ExamplePair ex;
    WindowWork work = exampleWork(ex);
    ScheduleResult res = scheduleLayer(GetParam(), work);
    EXPECT_EQ(res.arcsProcessed, ex.target.numArcs() + ex.query.numArcs());
    EXPECT_EQ(res.matchesProcessed,
              static_cast<uint64_t>(ex.target.numNodes()) *
                  ex.query.numNodes());
    EXPECT_GT(res.loads, 0u);
    EXPECT_GT(res.steps, 0u);
}

TEST_P(AllSchedulers, FullCoverageOnRandomGraphs)
{
    Rng rng(11);
    for (int trial = 0; trial < 8; ++trial) {
        Graph t = threadGraph(30 + 10 * trial, 36 + 12 * trial, rng);
        Graph q = erdosRenyiGnm(25 + 5 * trial, 40 + 8 * trial, rng);
        WindowWork work;
        work.target = &t;
        work.query = &q;
        work.capNodes = 8 + 2 * trial;
        work.hasMatching = true;
        ScheduleResult res = scheduleLayer(GetParam(), work);
        EXPECT_EQ(res.arcsProcessed, t.numArcs() + q.numArcs())
            << "trial " << trial;
        EXPECT_EQ(res.matchesProcessed,
                  static_cast<uint64_t>(t.numNodes()) * q.numNodes())
            << "trial " << trial;
        // Every node must be fetched at least once.
        EXPECT_GE(res.loads, t.numNodes() + q.numNodes());
    }
}

TEST_P(AllSchedulers, NoMatchingLayersCoverEdgesOnly)
{
    ExamplePair ex;
    WindowWork work = exampleWork(ex);
    work.hasMatching = false;
    ScheduleResult res = scheduleLayer(GetParam(), work);
    EXPECT_EQ(res.arcsProcessed, ex.target.numArcs() + ex.query.numArcs());
    EXPECT_EQ(res.matchesProcessed, 0u);
    EXPECT_GE(res.loads, ex.target.numNodes() + ex.query.numNodes());
}

TEST_P(AllSchedulers, EmfMaskShrinksMatching)
{
    Rng rng(13);
    Graph t = threadGraph(60, 70, rng);
    Graph q = threadGraph(50, 60, rng);
    WlColoring wl_t = wlRefine(t, 1);
    WlColoring wl_q = wlRefine(q, 1);
    std::vector<bool> keep_t(t.numNodes()), keep_q(q.numNodes());
    uint64_t uniq_t = 0, uniq_q = 0;
    {
        std::vector<bool> seen_t(wl_t.numClasses[1], false);
        for (NodeId v = 0; v < t.numNodes(); ++v) {
            keep_t[v] = !seen_t[wl_t.colors[1][v]];
            seen_t[wl_t.colors[1][v]] = true;
            uniq_t += keep_t[v];
        }
        std::vector<bool> seen_q(wl_q.numClasses[1], false);
        for (NodeId v = 0; v < q.numNodes(); ++v) {
            keep_q[v] = !seen_q[wl_q.colors[1][v]];
            seen_q[wl_q.colors[1][v]] = true;
            uniq_q += keep_q[v];
        }
    }

    WindowWork work;
    work.target = &t;
    work.query = &q;
    work.capNodes = 16;
    work.hasMatching = true;
    ScheduleResult full = scheduleLayer(GetParam(), work);

    work.matchTarget = &keep_t;
    work.matchQuery = &keep_q;
    ScheduleResult masked = scheduleLayer(GetParam(), work);

    EXPECT_EQ(masked.matchesProcessed, uniq_t * uniq_q);
    EXPECT_LT(masked.matchesProcessed, full.matchesProcessed);
    EXPECT_LE(masked.loads, full.loads);
    // Edge coverage unaffected by the filter.
    EXPECT_EQ(masked.arcsProcessed, t.numArcs() + q.numArcs());
}

TEST_P(AllSchedulers, TraceRecordsAllLoads)
{
    ExamplePair ex;
    WindowWork work = exampleWork(ex);
    ScheduleResult res = scheduleLayer(GetParam(), work, true);
    EXPECT_GE(res.accessTrace.size(), res.loads);
    for (uint32_t id : res.accessTrace) {
        EXPECT_LT(id, ex.target.numNodes() + ex.query.numNodes());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, AllSchedulers,
    ::testing::Values(SchedulerKind::SeparatePhase,
                      SchedulerKind::DoubleWindow, SchedulerKind::Joint,
                      SchedulerKind::Coordinated),
    AllSchedulers::name);

TEST(WindowOrdering, JointBeatsSeparateOnTheExample)
{
    // The paper's Fig. 8 vs Fig. 12 point: the joint window removes
    // the matching-stage reloads the separate-phase scheme incurs.
    ExamplePair ex;
    WindowWork work = exampleWork(ex);
    uint64_t separate =
        scheduleLayer(SchedulerKind::SeparatePhase, work).loads;
    uint64_t joint = scheduleLayer(SchedulerKind::Joint, work).loads;
    uint64_t coord =
        scheduleLayer(SchedulerKind::Coordinated, work).loads;
    EXPECT_LT(joint, separate);
    EXPECT_LE(coord, separate);
}

TEST(WindowOrdering, CoordinatedNeverWorseThanSeparateOnAverage)
{
    Rng rng(17);
    uint64_t sep_total = 0, coord_total = 0;
    for (int trial = 0; trial < 12; ++trial) {
        Graph t = threadGraph(80, 95, rng);
        Graph q = threadGraph(70, 85, rng);
        WindowWork work;
        work.target = &t;
        work.query = &q;
        work.capNodes = 24;
        work.hasMatching = true;
        sep_total +=
            scheduleLayer(SchedulerKind::SeparatePhase, work).loads;
        coord_total +=
            scheduleLayer(SchedulerKind::Coordinated, work).loads;
    }
    EXPECT_LT(coord_total, sep_total);
}

TEST(WindowOrdering, LargerBufferNeverIncreasesLoads)
{
    Rng rng(19);
    Graph t = threadGraph(100, 120, rng);
    Graph q = threadGraph(90, 110, rng);
    uint64_t prev = UINT64_MAX;
    for (uint32_t cap : {8u, 32u, 128u, 512u}) {
        WindowWork work;
        work.target = &t;
        work.query = &q;
        work.capNodes = cap;
        work.hasMatching = true;
        uint64_t loads =
            scheduleLayer(SchedulerKind::Coordinated, work).loads;
        EXPECT_LE(loads, prev) << "cap " << cap;
        prev = loads;
    }
    // With the whole pair resident, loads reach the cold minimum.
    EXPECT_EQ(prev, t.numNodes() + q.numNodes());
}

TEST(Aoe, PrecisionWithinBounds)
{
    Rng rng(23);
    Graph t = threadGraph(60, 72, rng);
    Graph q = sparseSocialGraph(50, 100, rng);
    WindowWork work;
    work.target = &t;
    work.query = &q;
    work.capNodes = 12;
    work.hasMatching = true;
    double precision = measureAoePrecision(work);
    EXPECT_GE(precision, 0.0);
    EXPECT_LE(precision, 1.0);
}

TEST(Aoe, TrivialScheduleHasPerfectPrecision)
{
    // Whole pair fits: no decisions, precision defined as 1.
    ExamplePair ex;
    WindowWork work = exampleWork(ex, 64);
    EXPECT_DOUBLE_EQ(measureAoePrecision(work), 1.0);
}

} // namespace
} // namespace cegma
