/**
 * @file
 * Edge-case hardening across the stack: degenerate graphs, minimal
 * buffers, and empty inputs must flow through tracing, scheduling,
 * and simulation without tripping invariants.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "accel/runner.hh"
#include "accel/window.hh"
#include "common/rng.hh"
#include "emf/emf.hh"
#include "graph/generators.hh"
#include "graph/wl_refine.hh"

namespace cegma {
namespace {

GraphPair
pairOf(Graph target, Graph query)
{
    GraphPair pair;
    pair.target = std::move(target);
    pair.query = std::move(query);
    pair.similar = true;
    return pair;
}

TEST(EdgeCases, EdgelessGraphsFlowThroughTheStack)
{
    GraphPair pair =
        pairOf(Graph::fromEdges(3, {}), Graph::fromEdges(2, {}));
    for (ModelId mid : allModels()) {
        PairTrace trace = buildTrace(mid, pair);
        if (mid == ModelId::GraphSim) {
            // GCN aggregation over zero arcs: only the self terms.
            EXPECT_EQ(trace.aggFlopsTotal(),
                      trace.layers.size() * (2ull * 5 * 64));
        }
        std::vector<PairTrace> traces{trace};
        SimResult result = runPlatform(PlatformId::Cegma, traces);
        EXPECT_GT(result.cycles, 0.0);
    }
}

TEST(EdgeCases, TwoNodePair)
{
    GraphPair pair = pairOf(Graph::fromEdges(2, {{0, 1}}),
                            Graph::fromEdges(2, {{0, 1}}));
    PairTrace trace = buildTrace(ModelId::GraphSim, pair);
    EXPECT_EQ(trace.totalMatchPairs(), 3ull * 4); // 3 layers x 2x2
    std::vector<PairTrace> traces{trace};
    for (PlatformId p : mainPlatforms()) {
        SimResult result = runPlatform(p, traces);
        EXPECT_GT(result.cycles, 0.0) << platformName(p);
    }
}

TEST(EdgeCases, MinimalBufferStillCoversEverything)
{
    Rng rng(1);
    Graph t = threadGraph(30, 36, rng);
    Graph q = threadGraph(25, 30, rng);
    WindowWork work;
    work.target = &t;
    work.query = &q;
    work.capNodes = 2; // one node per side
    work.hasMatching = true;
    for (SchedulerKind kind :
         {SchedulerKind::SeparatePhase, SchedulerKind::Joint,
          SchedulerKind::Coordinated}) {
        ScheduleResult res = scheduleLayer(kind, work);
        EXPECT_EQ(res.arcsProcessed, t.numArcs() + q.numArcs());
        EXPECT_EQ(res.matchesProcessed,
                  static_cast<uint64_t>(t.numNodes()) * q.numNodes());
    }
}

TEST(EdgeCases, AllDuplicateSideStillMatchesOnce)
{
    // A star's leaves all collapse to one unique node; the kept set
    // must never be empty.
    Graph star = Graph::fromEdges(6,
                                  {{0, 1}, {0, 2}, {0, 3}, {0, 4},
                                   {0, 5}});
    GraphPair pair = pairOf(star, star);
    PairTrace trace = buildTrace(ModelId::GraphSim, pair);
    for (const auto &layer : trace.layers) {
        EXPECT_GE(layer.matching.numUniqueTarget, 1u);
        EXPECT_LE(layer.matching.numUniqueTarget, 2u); // hub + leaf
        EXPECT_GE(layer.matching.uniquePairs(), 1u);
    }
}

TEST(EdgeCases, WlRefineSingleNode)
{
    Graph g = Graph::fromEdges(1, {});
    WlColoring wl = wlRefine(g, 3);
    for (size_t l = 0; l < wl.numLevels(); ++l)
        EXPECT_EQ(wl.numClasses[l], 1u);
    EXPECT_DOUBLE_EQ(wl.duplicateFraction(0), 0.0);
}

TEST(EdgeCases, EmfOnSingleRow)
{
    Matrix x(1, 4, {1, 2, 3, 4});
    EmfResult result = emfFilter(x);
    EXPECT_EQ(result.numUnique(), 1u);
    EXPECT_EQ(result.numDuplicates(), 0u);
    EXPECT_TRUE(result.isUnique[0]);
}

TEST(EdgeCases, ZeroPairSimulation)
{
    std::vector<PairTrace> empty;
    SimResult result = runPlatform(PlatformId::Cegma, empty);
    EXPECT_DOUBLE_EQ(result.cycles, 0.0);
    EXPECT_EQ(result.pairsSimulated, 0u);
    EXPECT_DOUBLE_EQ(result.throughput(1e9), 0.0);
}

TEST(EdgeCases, SubstituteOnTinyGraphIsSafe)
{
    Rng rng(2);
    Graph g = Graph::fromEdges(2, {{0, 1}});
    // Fewer than 3 nodes: substitution is a no-op copy.
    Graph h = g.substituteEdges(4, rng);
    EXPECT_EQ(h.numNodes(), 2u);
    EXPECT_EQ(h.numEdges(), 1u);
}

TEST(EdgeCases, RunFunctionalOnEmptyDataset)
{
    Dataset empty;
    empty.spec = datasetSpec(DatasetId::AIDS);
    for (ModelId mid : allModels()) {
        FunctionalOptions options;
        options.dedup = true;
        options.memo = true;
        FunctionalResult result = runFunctional(mid, empty, options);
        EXPECT_TRUE(result.scores.empty());
        EXPECT_DOUBLE_EQ(result.msPerPair(), 0.0);
        EXPECT_DOUBLE_EQ(result.dedupSkipRatio(), 0.0);
        EXPECT_DOUBLE_EQ(result.memoHitRate(), 0.0);
    }
}

TEST(EdgeCases, RunFunctionalMaxPairsBeyondDatasetSize)
{
    Dataset ds = makeCloneSearchDataset(DatasetId::AIDS, 2, 2);
    ASSERT_EQ(ds.pairs.size(), 4u);
    FunctionalResult capped =
        runFunctional(ModelId::GraphSim, ds, {}, 1000);
    FunctionalResult full = runFunctional(ModelId::GraphSim, ds, {});
    ASSERT_EQ(capped.scores.size(), 4u);
    for (size_t i = 0; i < full.scores.size(); ++i)
        EXPECT_EQ(capped.scores[i], full.scores[i]);
}

TEST(EdgeCases, SingleNodePairThroughEveryModelAndKnob)
{
    Dataset ds;
    ds.spec = datasetSpec(DatasetId::AIDS);
    ds.pairs.push_back(
        pairOf(Graph::fromEdges(1, {}), Graph::fromEdges(1, {})));
    for (ModelId mid : allModels()) {
        FunctionalResult dense = runFunctional(mid, ds);
        ASSERT_EQ(dense.scores.size(), 1u);
        EXPECT_TRUE(std::isfinite(dense.scores[0]));
        // Every elastic knob combination must produce the same bit.
        for (bool dedup : {false, true}) {
            for (bool memo : {false, true}) {
                FunctionalOptions options;
                options.dedup = dedup;
                options.memo = memo;
                FunctionalResult result = runFunctional(mid, ds, options);
                ASSERT_EQ(result.scores.size(), 1u);
                EXPECT_EQ(result.scores[0], dense.scores[0])
                    << modelConfig(mid).name << " dedup=" << dedup
                    << " memo=" << memo;
            }
        }
    }
}

TEST(EdgeCases, CustomConfigOneLayer)
{
    Rng rng(3);
    Graph g = threadGraph(20, 24, rng);
    GraphPair pair = makePairFromOriginal(g, true, rng);
    ModelConfig config = modelConfig(ModelId::SimGnn);
    config.numLayers = 1;
    PairTrace trace = buildCustomTrace(config, pair);
    ASSERT_EQ(trace.layers.size(), 1u);
    EXPECT_TRUE(trace.layers[0].matching.present);
}

} // namespace
} // namespace cegma
