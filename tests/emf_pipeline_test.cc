/**
 * @file
 * Tests for the cycle-stepped EMF pipeline model: functional
 * agreement with Algorithm 1, back-pressure behavior, and agreement
 * in magnitude with the analytical cycle model.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "emf/emf.hh"
#include "emf/emf_pipeline.hh"

namespace cegma {
namespace {

std::vector<uint32_t>
duplicateHeavyTags(size_t n, uint32_t pool, Rng &rng)
{
    std::vector<uint32_t> tags(n);
    std::vector<uint32_t> values(pool);
    for (auto &v : values)
        v = static_cast<uint32_t>(rng.next64());
    for (auto &t : tags)
        t = values[rng.nextBounded(pool)];
    return tags;
}

TEST(EmfPipeline, EmptyInput)
{
    EmfPipelineResult result = runEmfPipeline({}, 256);
    EXPECT_EQ(result.sets.numUnique(), 0u);
    EXPECT_EQ(result.cycles, 0u);
}

TEST(EmfPipeline, MatchesFunctionalAlgorithmExactly)
{
    Rng rng(5);
    for (size_t n : {1ul, 7ul, 64ul, 400ul}) {
        auto tags = duplicateHeavyTags(n, 12, rng);
        EmfPipelineResult hw = runEmfPipeline(tags, 256);
        EmfResult sw = emfFilterTags(tags);
        EXPECT_EQ(hw.sets.recordSet, sw.recordSet) << "n=" << n;
        EXPECT_EQ(hw.sets.tagMap, sw.tagMap) << "n=" << n;
        EXPECT_EQ(hw.sets.uniqueOf, sw.uniqueOf) << "n=" << n;
    }
}

TEST(EmfPipeline, CyclesScaleWithNodes)
{
    Rng rng(6);
    auto small_tags = duplicateHeavyTags(64, 8, rng);
    auto big_tags = duplicateHeavyTags(512, 8, rng);
    uint64_t small_c = runEmfPipeline(small_tags, 256).cycles;
    uint64_t big_c = runEmfPipeline(big_tags, 256).cycles;
    EXPECT_GT(big_c, small_c);
    // Roughly linear: within 4x-16x for an 8x node increase.
    EXPECT_GT(big_c, small_c * 4);
    EXPECT_LT(big_c, small_c * 16);
}

TEST(EmfPipeline, AgreesWithAnalyticalModelInMagnitude)
{
    Rng rng(7);
    auto tags = duplicateHeavyTags(391, 40, rng); // RD-12K-ish
    EmfPipelineConfig config;
    EmfPipelineResult hw = runEmfPipeline(tags, 256, config);

    EmfCycleModel analytical{config.hashLanes,
                             config.totalComparators()};
    uint64_t predicted = analytical.hashCycles(tags.size(), 256) +
                         analytical.filterCycles(tags);
    // The pipeline overlaps hashing and filtering; total cycles land
    // between the slower component and the serial sum.
    EXPECT_GT(hw.cycles, predicted / 4);
    EXPECT_LT(hw.cycles, predicted * 2);
}

TEST(EmfPipeline, TinyTaskBufferCausesBackPressure)
{
    Rng rng(8);
    auto tags = duplicateHeavyTags(512, 4, rng);
    EmfPipelineConfig tiny;
    tiny.taskBufferDepth = 2;
    tiny.pipelineWidth = 1;
    EmfPipelineConfig roomy;
    roomy.taskBufferDepth = 256;

    EmfPipelineResult constrained = runEmfPipeline(tags, 1024, tiny);
    EmfPipelineResult free_run = runEmfPipeline(tags, 1024, roomy);
    EXPECT_GT(constrained.stallCycles, 0u);
    EXPECT_GE(constrained.cycles, free_run.cycles);
    EXPECT_LE(free_run.taskBufferPeak, 256u);
    EXPECT_LE(constrained.taskBufferPeak, 2u);
    // Back-pressure never corrupts the result.
    EXPECT_EQ(constrained.sets.recordSet, free_run.sets.recordSet);
}

TEST(EmfPipeline, RoundRobinBalancesSubsets)
{
    Rng rng(9);
    // All-unique stream: subsets should stay within one entry of each
    // other.
    std::vector<uint32_t> tags(256);
    for (uint32_t i = 0; i < 256; ++i)
        tags[i] = i * 2654435761u;
    EmfPipelineResult result = runEmfPipeline(tags, 256);
    uint32_t mn = UINT32_MAX, mx = 0;
    for (uint32_t size : result.subsetSizes) {
        mn = std::min(mn, size);
        mx = std::max(mx, size);
    }
    EXPECT_LE(mx - mn, 1u);
    uint32_t total = 0;
    for (uint32_t size : result.subsetSizes)
        total += size;
    EXPECT_EQ(total, result.sets.numUnique());
}

TEST(EmfPipeline, WiderHashArrayIsFaster)
{
    Rng rng(10);
    auto tags = duplicateHeavyTags(512, 16, rng);
    EmfPipelineConfig narrow;
    narrow.hashLanes = 8;
    EmfPipelineConfig wide;
    wide.hashLanes = 64;
    EXPECT_GT(runEmfPipeline(tags, 256, narrow).cycles,
              runEmfPipeline(tags, 256, wide).cycles);
}

} // namespace
} // namespace cegma
