/**
 * @file
 * The SIMD dispatch contract (common/simd.hh, tensor/kernels.hh): the
 * AVX2 kernels are *bit-identical* to the restructured scalar oracle
 * on every shape — ragged tails, zero sizes, NaN / infinity /
 * denormal inputs — at every thread count, through every layer that
 * consumes them: raw dots, GEMMs, similarity (dense, windowed and
 * dedup'd), EMF tags, and whole model forward passes.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/simd.hh"
#include "gmn/model.hh"
#include "gmn/similarity.hh"
#include "gmn/window_sched.hh"
#include "graph/generators.hh"
#include "hash/xxhash.hh"
#include "tensor/kernels.hh"
#include "tensor/matrix.hh"

namespace cegma {
namespace {

const SimilarityKind kAllKinds[] = {
    SimilarityKind::DotProduct,
    SimilarityKind::Cosine,
    SimilarityKind::Euclidean,
};

const uint32_t kThreadCounts[] = {1, 2, 8};

/** Lengths that hit every tail path: step-32 main loop, the step-8
 *  drain, the serial <8 tail, and n mod 8 != 0 raggedness. */
const size_t kLengths[] = {0,  1,  3,  7,  8,  9,  15, 16,  17,
                           31, 32, 33, 40, 63, 64, 65, 100, 129};

struct Shape
{
    size_t n, m, f;
};

/** Matrix shapes with ragged rows, columns and depths (f mod 8 != 0
 *  included), plus empty extents. */
const Shape kShapes[] = {
    {1, 1, 1},  {3, 5, 7},    {8, 8, 8},    {9, 17, 33}, {16, 32, 64},
    {37, 53, 133}, {64, 64, 40}, {5, 64, 96}, {0, 5, 8},  {5, 0, 8},
};

class SimdTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        if (!cpuSupportsAvx2())
            GTEST_SKIP() << "CPU/build has no AVX2; nothing to compare";
    }

    void TearDown() override
    {
        ThreadPool::instance().setThreads(1);
        setSimdLevel(cpuSupportsAvx2() ? SimdLevel::Avx2
                                       : SimdLevel::Scalar);
        setWindowPolicy(WindowPolicy::Auto);
    }
};

bool
bitEqual(float a, float b)
{
    return std::memcmp(&a, &b, sizeof(float)) == 0;
}

/**
 * The cross-level contract for tensors that may contain NaN: finite
 * and infinite cells bit-exact, NaN cells NaN on both sides. NaN
 * *payloads* are excluded — the compiler may commute scalar FP ops,
 * and x86 keeps the first operand's payload when two different NaNs
 * meet, so payload bits are codegen-dependent (see kernels.hh).
 */
bool
bitOrNanEqual(float a, float b)
{
    if (std::isnan(a) || std::isnan(b))
        return std::isnan(a) && std::isnan(b);
    return bitEqual(a, b);
}

bool
matricesBitOrNanEqual(const Matrix &a, const Matrix &b)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (!bitOrNanEqual(a.data()[i], b.data()[i]))
            return false;
    }
    return true;
}

/** Random values with specials scattered in: NaN, +/-inf, a
 *  denormal, and a negative zero — every bit pattern must propagate
 *  identically through both kernel sets. */
void
fillWithSpecials(Matrix &m, Rng &rng)
{
    m.fillXavier(rng);
    const float specials[] = {
        std::numeric_limits<float>::quiet_NaN(),
        std::numeric_limits<float>::infinity(),
        -std::numeric_limits<float>::infinity(),
        1e-42f, // denormal
        -0.0f,
    };
    for (size_t i = 0; i < m.size(); i += 17)
        m.data()[i] = specials[(i / 17) % 5];
}

TEST_F(SimdTest, DotBitExactEveryTailShape)
{
    Rng rng(101);
    const TensorKernels &scalar = tensorKernels(SimdLevel::Scalar);
    const TensorKernels &avx2 = tensorKernels(SimdLevel::Avx2);
    for (size_t n : kLengths) {
        std::vector<float> a(n), b(n);
        for (size_t i = 0; i < n; ++i) {
            a[i] = static_cast<float>(rng.nextDouble() * 2.0 - 1.0);
            b[i] = static_cast<float>(rng.nextDouble() * 2.0 - 1.0);
        }
        EXPECT_TRUE(bitEqual(scalar.dot(a.data(), b.data(), n),
                             avx2.dot(a.data(), b.data(), n)))
            << "n=" << n;
    }
}

TEST_F(SimdTest, DotBitExactWithSpecials)
{
    Rng rng(102);
    const TensorKernels &scalar = tensorKernels(SimdLevel::Scalar);
    const TensorKernels &avx2 = tensorKernels(SimdLevel::Avx2);
    for (size_t n : kLengths) {
        Matrix a(1, n), b(1, n);
        fillWithSpecials(a, rng);
        fillWithSpecials(b, rng);
        float s = scalar.dot(a.data(), b.data(), n);
        float v = avx2.dot(a.data(), b.data(), n);
        EXPECT_TRUE(bitOrNanEqual(s, v)) << "n=" << n << " scalar=" << s
                                         << " avx2=" << v;
    }
}

TEST_F(SimdTest, GemmBitExactAcrossLevelsAndThreads)
{
    Rng rng(103);
    for (const Shape &sh : kShapes) {
        Matrix a(sh.n, sh.f), bt(sh.m, sh.f), b(sh.f, sh.m);
        a.fillXavier(rng);
        bt.fillXavier(rng);
        b.fillXavier(rng);

        ThreadPool::instance().setThreads(1);
        setSimdLevel(SimdLevel::Scalar);
        Matrix nt_ref = matmulNT(a, bt);
        Matrix mm_ref = matmul(a, b);

        for (uint32_t threads : kThreadCounts) {
            ThreadPool::instance().setThreads(threads);
            for (SimdLevel level :
                 {SimdLevel::Scalar, SimdLevel::Avx2}) {
                setSimdLevel(level);
                EXPECT_TRUE(matmulNT(a, bt).equals(nt_ref))
                    << sh.n << "x" << sh.m << "x" << sh.f
                    << " level=" << simdLevelName(level)
                    << " threads=" << threads;
                EXPECT_TRUE(matmul(a, b).equals(mm_ref))
                    << sh.n << "x" << sh.m << "x" << sh.f
                    << " level=" << simdLevelName(level)
                    << " threads=" << threads;
            }
        }
    }
}

TEST_F(SimdTest, SimilarityBitExactIncludingSpecials)
{
    Rng rng(104);
    for (const Shape &sh : kShapes) {
        for (bool specials : {false, true}) {
            Matrix x(sh.n, sh.f), y(sh.m, sh.f);
            if (specials) {
                fillWithSpecials(x, rng);
                fillWithSpecials(y, rng);
            } else {
                x.fillXavier(rng);
                y.fillXavier(rng);
            }
            for (SimilarityKind kind : kAllKinds) {
                setSimdLevel(SimdLevel::Scalar);
                Matrix ref = similarityMatrix(x, y, kind);
                setSimdLevel(SimdLevel::Avx2);
                Matrix got = similarityMatrix(x, y, kind);
                // Specials inject NaNs, where only position (not
                // payload) is pinned down; without them the compare
                // degenerates to exact bit equality.
                EXPECT_TRUE(matricesBitOrNanEqual(got, ref))
                    << similarityName(kind) << " " << sh.n << "x"
                    << sh.m << "x" << sh.f
                    << " specials=" << specials;
                if (!specials)
                    EXPECT_TRUE(got.equals(ref));
            }
        }
    }
}

TEST_F(SimdTest, WindowedSimilarityBitExactEveryBudgetAndOrder)
{
    Rng rng(105);
    Matrix x(61, 45), y(83, 45);
    x.fillXavier(rng);
    y.fillXavier(rng);
    for (SimilarityKind kind : kAllKinds) {
        setSimdLevel(SimdLevel::Scalar);
        setWindowPolicy(WindowPolicy::Stream);
        Matrix ref = similarityMatrix(x, y, kind);
        for (SimdLevel level : {SimdLevel::Scalar, SimdLevel::Avx2}) {
            setSimdLevel(level);
            for (size_t budget : {size_t(2048), size_t(1) << 14,
                                  size_t(0) /* real L2 */}) {
                for (bool aoe : {true, false}) {
                    WindowSchedConfig cfg;
                    cfg.cacheBytes = budget;
                    cfg.useAoe = aoe;
                    WindowSchedStats st;
                    Matrix win = similarityMatrixWindowed(x, y, kind,
                                                          cfg, &st);
                    EXPECT_TRUE(win.equals(ref))
                        << similarityName(kind) << " budget=" << budget
                        << " aoe=" << aoe
                        << " level=" << simdLevelName(level);
                    // Every joint window computed exactly once.
                    size_t ntx =
                        (x.rows() + st.tileRowsX - 1) / st.tileRowsX;
                    size_t nty =
                        (y.rows() + st.tileRowsY - 1) / st.tileRowsY;
                    EXPECT_EQ(st.windows, ntx * nty);
                    EXPECT_EQ(st.slides + st.jumps + 1, st.windows);
                }
            }
            EXPECT_TRUE(similarityMatrixStreamed(x, y, kind).equals(ref))
                << similarityName(kind)
                << " level=" << simdLevelName(level);
        }
    }
}

TEST_F(SimdTest, EmfTagsBitExactRaggedRowsAndStrides)
{
    Rng rng(106);
    for (size_t rows : {size_t(1), size_t(7), size_t(8), size_t(9),
                        size_t(23), size_t(64)}) {
        for (size_t cols : {size_t(1), size_t(3), size_t(4), size_t(5),
                            size_t(16), size_t(33), size_t(64)}) {
            Matrix f(rows, cols);
            f.fillXavier(rng);
            const size_t row_bytes = cols * sizeof(float);

            setSimdLevel(SimdLevel::Scalar);
            std::vector<uint32_t> ref(rows);
            xxhash32Rows(f.data(), row_bytes, row_bytes, rows, 1234,
                         ref.data());
            for (size_t r = 0; r < rows; ++r)
                EXPECT_EQ(ref[r], xxhash32(f.row(r), row_bytes, 1234));

            setSimdLevel(SimdLevel::Avx2);
            std::vector<uint32_t> vec(rows);
            xxhash32Rows(f.data(), row_bytes, row_bytes, rows, 1234,
                         vec.data());
            EXPECT_EQ(vec, ref) << rows << "x" << cols;

            // Strided layout (rows wider apart than their content).
            const size_t stride = row_bytes + 12;
            std::vector<uint8_t> buf(rows * stride, 0xa5);
            for (size_t r = 0; r < rows; ++r)
                std::memcpy(buf.data() + r * stride, f.row(r),
                            row_bytes);
            std::vector<uint32_t> strided(rows);
            xxhash32Rows(buf.data(), row_bytes, stride, rows, 1234,
                         strided.data());
            EXPECT_EQ(strided, ref) << rows << "x" << cols << " strided";
        }
    }
}

/**
 * The end-to-end guarantee: whole forward passes produce bit-equal
 * scores across SIMD level x thread count x dedup on/off x window
 * policy, for all three models.
 */
TEST_F(SimdTest, ModelScoresBitIdenticalAcrossTheGrid)
{
    Rng rng(107);
    Graph g = threadGraph(32, 38, rng);
    GraphPair pair = makePairFromOriginal(g, true, rng);

    for (ModelId id : allModels()) {
        auto model = makeModel(id, 55);

        ThreadPool::instance().setThreads(1);
        setSimdLevel(SimdLevel::Scalar);
        setWindowPolicy(WindowPolicy::Stream);
        const double ref = model->score(pair);

        for (SimdLevel level : {SimdLevel::Scalar, SimdLevel::Avx2}) {
            for (uint32_t threads : kThreadCounts) {
                for (bool dedup : {false, true}) {
                    for (WindowPolicy policy :
                         {WindowPolicy::Stream, WindowPolicy::Joint}) {
                        setSimdLevel(level);
                        ThreadPool::instance().setThreads(threads);
                        setWindowPolicy(policy);
                        InferenceOptions opts;
                        opts.dedupMatching = dedup;
                        model->setInferenceOptions(opts);
                        EXPECT_EQ(model->score(pair), ref)
                            << modelConfig(id).name
                            << " level=" << simdLevelName(level)
                            << " threads=" << threads
                            << " dedup=" << dedup << " policy="
                            << static_cast<int>(policy);
                    }
                }
            }
        }
    }
}

/** CEGMA_SIMD / setSimdLevel plumbing basics. */
TEST(SimdDispatch, LevelNamesAndOverride)
{
    EXPECT_STREQ(simdLevelName(SimdLevel::Scalar), "scalar");
    EXPECT_STREQ(simdLevelName(SimdLevel::Avx2), "avx2");
    setSimdLevel(SimdLevel::Scalar);
    EXPECT_EQ(simdLevel(), SimdLevel::Scalar);
    // Requesting AVX2 either takes effect or clamps to scalar with a
    // warning — never an invalid level.
    setSimdLevel(SimdLevel::Avx2);
    EXPECT_EQ(simdLevel(), cpuSupportsAvx2() ? SimdLevel::Avx2
                                             : SimdLevel::Scalar);
    setSimdLevel(cpuSupportsAvx2() ? SimdLevel::Avx2
                                   : SimdLevel::Scalar);
}

} // namespace
} // namespace cegma
