/**
 * @file
 * Round-trip tests for the graph/dataset/trace serialization.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "accel/runner.hh"
#include "common/rng.hh"
#include "gmn/workload.hh"
#include "graph/generators.hh"
#include "io/graph_io.hh"
#include "io/trace_io.hh"

namespace cegma {
namespace {

bool
graphsEqual(const Graph &a, const Graph &b)
{
    return a.numNodes() == b.numNodes() &&
           a.edgeList() == b.edgeList() && a.labels() == b.labels();
}

TEST(GraphIo, GraphRoundTripUnlabeled)
{
    Rng rng(1);
    Graph g = threadGraph(40, 48, rng);
    std::stringstream ss;
    writeGraph(ss, g);
    Graph back = readGraph(ss);
    EXPECT_TRUE(graphsEqual(g, back));
}

TEST(GraphIo, GraphRoundTripLabeled)
{
    Rng rng(2);
    Graph g = moleculeGraph(20, 12, rng);
    std::stringstream ss;
    writeGraph(ss, g);
    Graph back = readGraph(ss);
    EXPECT_TRUE(graphsEqual(g, back));
    EXPECT_EQ(g.numDistinctLabels(), back.numDistinctLabels());
}

TEST(GraphIo, EmptyEdgeGraph)
{
    Graph g = Graph::fromEdges(3, {});
    std::stringstream ss;
    writeGraph(ss, g);
    Graph back = readGraph(ss);
    EXPECT_EQ(back.numNodes(), 3u);
    EXPECT_EQ(back.numEdges(), 0u);
}

TEST(GraphIo, PairRoundTrip)
{
    Rng rng(3);
    Graph g = sparseSocialGraph(30, 50, rng);
    GraphPair pair = makePairFromOriginal(g, false, rng);
    std::stringstream ss;
    writePair(ss, pair);
    GraphPair back = readPair(ss);
    EXPECT_FALSE(back.similar);
    EXPECT_TRUE(graphsEqual(pair.target, back.target));
    EXPECT_TRUE(graphsEqual(pair.query, back.query));
}

TEST(GraphIo, DatasetRoundTripKeepsSpec)
{
    Dataset ds = makeDataset(DatasetId::AIDS, 7, 6);
    std::stringstream ss;
    writeDataset(ss, ds);
    Dataset back = readDataset(ss);
    EXPECT_EQ(back.spec.name, "AIDS");
    EXPECT_DOUBLE_EQ(back.spec.avgNodes, ds.spec.avgNodes);
    ASSERT_EQ(back.pairs.size(), ds.pairs.size());
    for (size_t i = 0; i < ds.pairs.size(); ++i) {
        EXPECT_TRUE(graphsEqual(ds.pairs[i].target, back.pairs[i].target));
        EXPECT_EQ(ds.pairs[i].similar, back.pairs[i].similar);
    }
}

TEST(GraphIo, FileSaveLoad)
{
    Dataset ds = makeDataset(DatasetId::RD_B, 7, 2);
    std::string path = "/tmp/cegma_io_test_dataset.txt";
    saveDataset(path, ds);
    Dataset back = loadDataset(path);
    EXPECT_EQ(back.pairs.size(), ds.pairs.size());
    EXPECT_NEAR(back.measuredAvgNodes(), ds.measuredAvgNodes(), 1e-9);
}

TEST(TraceIo, TraceRoundTripPreservesWorkload)
{
    Dataset ds = makeDataset(DatasetId::GITHUB, 7, 3);
    std::vector<PairTrace> traces;
    for (const auto &pair : ds.pairs)
        traces.push_back(buildTrace(ModelId::GmnLi, pair));

    std::stringstream ss;
    writeTraces(ss, traces);
    TraceBundle bundle = readTraces(ss);
    ASSERT_EQ(bundle.size(), traces.size());

    for (size_t i = 0; i < traces.size(); ++i) {
        const PairTrace &a = traces[i];
        const PairTrace &b = bundle.traces()[i];
        EXPECT_EQ(a.model, b.model);
        EXPECT_EQ(a.totalFlops(), b.totalFlops());
        EXPECT_EQ(a.totalMatchPairs(), b.totalMatchPairs());
        EXPECT_EQ(a.uniqueMatchPairs(), b.uniqueMatchPairs());
        ASSERT_EQ(a.layers.size(), b.layers.size());
        for (size_t l = 0; l < a.layers.size(); ++l) {
            EXPECT_EQ(a.layers[l].matching.dupClassTarget,
                      b.layers[l].matching.dupClassTarget);
            EXPECT_EQ(a.layers[l].embedTarget.aggFlops,
                      b.layers[l].embedTarget.aggFlops);
        }
        EXPECT_TRUE(graphsEqual(a.pair->target, b.pair->target));
        EXPECT_TRUE(graphsEqual(a.pair->query, b.pair->query));
    }
}

TEST(TraceIo, LoadedTraceDrivesTheSimulatorIdentically)
{
    // The whole point of trace files: replaying them must produce the
    // same simulation results as the live traces.
    Dataset ds = makeDataset(DatasetId::RD_B, 7, 3);
    std::vector<PairTrace> traces;
    for (const auto &pair : ds.pairs)
        traces.push_back(buildTrace(ModelId::GraphSim, pair));

    std::string path = "/tmp/cegma_io_test_traces.txt";
    saveTraces(path, traces);
    TraceBundle bundle = loadTraces(path);

    SimResult a = runPlatform(PlatformId::Cegma, traces);
    SimResult b = runPlatform(PlatformId::Cegma, bundle.traces());
    EXPECT_DOUBLE_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.dramBytes(), b.dramBytes());
    EXPECT_EQ(a.macOps, b.macOps);
}

} // namespace
} // namespace cegma
