/**
 * @file
 * Tests for the buffer replay simulator, including the cross-check of
 * the window schedulers' self-reported load counts against an LRU
 * replay of their own access traces.
 */

#include <gtest/gtest.h>

#include "accel/window.hh"
#include "common/rng.hh"
#include "graph/generators.hh"
#include "sim/buffer.hh"

namespace cegma {
namespace {

TEST(NodeBuffer, HitsAndEvictions)
{
    NodeBuffer buffer(2);
    EXPECT_FALSE(buffer.access(1)); // miss
    EXPECT_FALSE(buffer.access(2)); // miss
    EXPECT_TRUE(buffer.access(1));  // hit
    EXPECT_FALSE(buffer.access(3)); // miss, evicts 2 (LRU)
    EXPECT_FALSE(buffer.access(2)); // miss again
    EXPECT_TRUE(buffer.access(3));  // 3 still resident
    EXPECT_EQ(buffer.occupancy(), 2u);
}

TEST(NodeBuffer, LruVsFifoDiffer)
{
    // Classic sequence where LRU beats FIFO: 1 2 1 3 1 2 ...
    std::vector<uint32_t> trace{1, 2, 1, 3, 1, 2, 1, 3, 1, 2};
    BufferReplay lru = replayTrace(trace, 2, ReplacementPolicy::Lru);
    BufferReplay fifo = replayTrace(trace, 2, ReplacementPolicy::Fifo);
    EXPECT_LT(lru.misses, fifo.misses);
    EXPECT_EQ(lru.accesses, trace.size());
    EXPECT_EQ(lru.coldMisses, 3u);
}

TEST(NodeBuffer, InfiniteCapacityOnlyColdMisses)
{
    Rng rng(3);
    std::vector<uint32_t> trace(500);
    for (auto &t : trace)
        t = static_cast<uint32_t>(rng.nextBounded(40));
    BufferReplay replay = replayTrace(trace, 1000);
    EXPECT_EQ(replay.misses, replay.coldMisses);
    EXPECT_EQ(replay.coldMisses, 40u);
}

TEST(NodeBuffer, MissRateMonotoneInCapacity)
{
    // LRU has the stack property: more capacity never hurts.
    Rng rng(5);
    std::vector<uint32_t> trace(2000);
    for (auto &t : trace)
        t = static_cast<uint32_t>(rng.nextBounded(128));
    uint64_t prev = UINT64_MAX;
    for (uint32_t cap : {4u, 16u, 64u, 256u}) {
        BufferReplay replay = replayTrace(trace, cap);
        EXPECT_LE(replay.misses, prev);
        prev = replay.misses;
    }
}

TEST(NodeBuffer, SchedulerLoadsTrackLruReplay)
{
    // Replaying a scheduler's own access trace through an LRU buffer
    // of the same capacity must give a miss count in the same
    // ballpark as the loads the scheduler charged itself: the
    // explicit window management should be within 2x of LRU in both
    // directions (it loads whole blocks, LRU reuses partial overlap).
    Rng rng(7);
    Graph t = threadGraph(120, 140, rng);
    Graph q = threadGraph(100, 120, rng);
    for (SchedulerKind kind :
         {SchedulerKind::SeparatePhase, SchedulerKind::Coordinated}) {
        WindowWork work;
        work.target = &t;
        work.query = &q;
        work.capNodes = 32;
        work.hasMatching = true;
        ScheduleResult sched = scheduleLayer(kind, work, true);
        BufferReplay replay = replayTrace(sched.accessTrace, 32);
        EXPECT_GT(sched.loads, replay.misses / 2)
            << static_cast<int>(kind);
        EXPECT_LT(sched.loads, replay.misses * 2 + 16)
            << static_cast<int>(kind);
    }
}

TEST(NodeBuffer, ResidentQueries)
{
    NodeBuffer buffer(3);
    buffer.access(7);
    EXPECT_TRUE(buffer.resident(7));
    EXPECT_FALSE(buffer.resident(8));
}

} // namespace
} // namespace cegma
