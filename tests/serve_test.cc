/**
 * @file
 * The serving subsystem's proof obligations:
 *   - the bounded sharded LRU keeps its byte-budget invariant and
 *     evicts least-recently-used first;
 *   - the bounded MemoCache evicts under pressure without changing a
 *     single produced bit;
 *   - the memo is structurally a no-op for cross-feedback models
 *     (GMN-Li never touches the embedding cache);
 *   - `SearchService` scores are bit-identical to a serial
 *     `runFunctional` at thread counts {1, 2, 8} x batch sizes
 *     {1, 4, 32};
 *   - micro-batcher flush/bound semantics;
 *   - concurrent submit/shutdown is safe (run under TSan by ci.sh) and
 *     loses no request: everything submitted is completed or rejected.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "accel/runner.hh"
#include "common/parallel.hh"
#include "common/sharded_lru.hh"
#include "gmn/memo.hh"
#include "graph/dataset.hh"
#include "serve/batcher.hh"
#include "serve/loadgen.hh"
#include "serve/service.hh"

namespace cegma {
namespace {

// ---- ShardedLruCache ------------------------------------------------

using IntCache = ShardedLruCache<int, int>;

std::shared_ptr<const int>
val(int v)
{
    return std::make_shared<const int>(v);
}

TEST(ShardedLru, BudgetNeverExceeded)
{
    IntCache cache(100, 4);
    for (int k = 0; k < 200; ++k) {
        cache.insert(k, val(k), static_cast<size_t>(1 + k % 13));
        ASSERT_LE(cache.bytes(), 100u) << "after insert " << k;
    }
    EXPECT_GT(cache.evictions(), 0u);
    EXPECT_GT(cache.size(), 0u);
}

TEST(ShardedLru, EvictsLeastRecentlyUsedFirst)
{
    // One shard makes the recency order global and testable.
    IntCache cache(30, 1);
    cache.insert(1, val(1), 10);
    cache.insert(2, val(2), 10);
    cache.insert(3, val(3), 10);
    // Touch 1 so 2 becomes the LRU entry.
    ASSERT_NE(cache.find(1), nullptr);
    cache.insert(4, val(4), 10);
    EXPECT_EQ(cache.find(2), nullptr); // evicted
    EXPECT_NE(cache.find(1), nullptr);
    EXPECT_NE(cache.find(3), nullptr);
    EXPECT_NE(cache.find(4), nullptr);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.bytes(), 30u);
}

TEST(ShardedLru, OversizedValueServedUncached)
{
    IntCache cache(100, 4); // per-shard budget: 25 bytes
    auto returned = cache.insert(7, val(7), 50);
    ASSERT_NE(returned, nullptr);
    EXPECT_EQ(*returned, 7); // caller still gets its value
    EXPECT_EQ(cache.find(7), nullptr);
    EXPECT_EQ(cache.oversized(), 1u);
    EXPECT_EQ(cache.bytes(), 0u);
    EXPECT_EQ(cache.size(), 0u);
}

TEST(ShardedLru, FirstInsertWins)
{
    IntCache cache(100, 1);
    auto first = cache.insert(5, val(50), 10);
    auto second = cache.insert(5, val(99), 10);
    EXPECT_EQ(*second, 50); // the resident value, not the loser's
    EXPECT_EQ(first.get(), second.get());
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.bytes(), 10u);
}

TEST(ShardedLru, UnboundedWhenBudgetZero)
{
    IntCache cache(0, 2);
    for (int k = 0; k < 64; ++k)
        cache.insert(k, val(k), 1 << 20);
    EXPECT_EQ(cache.size(), 64u);
    EXPECT_EQ(cache.evictions(), 0u);
    EXPECT_EQ(cache.oversized(), 0u);
}

// ---- Bounded MemoCache in the functional path -----------------------

TEST(BoundedMemo, EvictsUnderPressureWithoutChangingBits)
{
    Dataset ds = makeCloneSearchDataset(DatasetId::AIDS, 5, 3);

    FunctionalOptions unbounded;
    unbounded.memo = true;
    FunctionalResult reference = runFunctional(ModelId::GraphSim, ds,
                                               unbounded);
    EXPECT_EQ(reference.memoEvictions, 0u);

    FunctionalOptions bounded = unbounded;
    // Small enough that the 8 distinct graphs' embedding chains cannot
    // all stay resident; one shard keeps the LRU order global.
    bounded.memoBytes = size_t{48} << 10;
    bounded.memoShards = 1;
    FunctionalResult result = runFunctional(ModelId::GraphSim, ds,
                                            bounded);

    EXPECT_GT(result.memoEvictions, 0u);
    EXPECT_LE(result.memoBytes, bounded.memoBytes);
    ASSERT_EQ(result.scores.size(), reference.scores.size());
    for (size_t i = 0; i < result.scores.size(); ++i)
        EXPECT_EQ(result.scores[i], reference.scores[i]) << "pair " << i;
}

TEST(BoundedMemo, CrossFeedbackModelNeverTouchesEmbeddingCache)
{
    Dataset ds = makeCloneSearchDataset(DatasetId::AIDS, 2, 2);

    // GMN-Li's embeddings depend on the partner graph: the memo must
    // skip the embedding cache entirely (lookups would be pure
    // overhead), while WL colorings stay memoizable.
    {
        MemoCache memo;
        auto model = makeModel(ModelId::GmnLi);
        InferenceOptions infer;
        infer.memo = &memo;
        model->setInferenceOptions(infer);
        for (const GraphPair &pair : ds.pairs)
            model->score(pair);
        EXPECT_EQ(memo.embeddingLookups(), 0u);
        EXPECT_GT(memo.wlLookups(), 0u);
    }

    // A non-cross-feedback model does use it.
    {
        MemoCache memo;
        auto model = makeModel(ModelId::GraphSim);
        InferenceOptions infer;
        infer.memo = &memo;
        model->setInferenceOptions(infer);
        for (const GraphPair &pair : ds.pairs)
            model->score(pair);
        EXPECT_GT(memo.embeddingLookups(), 0u);
    }
}

// ---- MicroBatcher ---------------------------------------------------

TEST(MicroBatcher, SizeTriggerSplitsIntoMaxBatchChunks)
{
    MicroBatcher<int> batcher(2, std::chrono::microseconds(1000000), 64);
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(batcher.enqueue(int{i}));
    EXPECT_EQ(batcher.nextBatch(), (std::vector<int>{0, 1}));
    EXPECT_EQ(batcher.nextBatch(), (std::vector<int>{2, 3}));
    batcher.close();
    EXPECT_EQ(batcher.nextBatch(), (std::vector<int>{4}));
    EXPECT_TRUE(batcher.nextBatch().empty()); // closed and drained
}

TEST(MicroBatcher, DeadlineFlushesPartialBatch)
{
    // maxBatch far above what arrives: only the deadline can flush.
    MicroBatcher<int> batcher(64, std::chrono::microseconds(500), 64);
    ASSERT_TRUE(batcher.enqueue(7));
    std::vector<int> batch = batcher.nextBatch();
    EXPECT_EQ(batch, (std::vector<int>{7}));
}

TEST(MicroBatcher, DepthBoundAndCloseRefuseAdmission)
{
    MicroBatcher<int> batcher(8, std::chrono::microseconds(1000), 2);
    EXPECT_TRUE(batcher.enqueue(1));
    EXPECT_TRUE(batcher.enqueue(2));
    EXPECT_FALSE(batcher.enqueue(3)); // at max_depth
    EXPECT_EQ(batcher.depth(), 2u);
    batcher.close();
    EXPECT_FALSE(batcher.enqueue(4)); // closed
    EXPECT_TRUE(batcher.closed());
}

// ---- SearchService --------------------------------------------------

constexpr uint32_t kQueries = 5;
constexpr uint32_t kCandidates = 3;

/** Serial reference scores over the same (candidate, query) grid. */
std::vector<double>
serialReferenceScores(ModelId model)
{
    ThreadPool::instance().setThreads(1);
    Dataset ds = makeCloneSearchDataset(DatasetId::AIDS, kQueries,
                                        kCandidates);
    FunctionalResult result = runFunctional(model, ds);
    return result.scores;
}

/**
 * Submit every query to a fresh service and check each result against
 * the reference grid (`reference[q * C + c]` is query q vs candidate
 * c — the clone-search pair order).
 */
void
expectServiceMatchesReference(ModelId model,
                              const std::vector<double> &reference,
                              uint32_t threads, uint32_t batch)
{
    ThreadPool::instance().setThreads(threads);
    CloneSearchCorpus corpus = makeCloneSearchCorpus(
        DatasetId::AIDS, kQueries, kCandidates);

    ServeConfig config;
    config.model = model;
    config.dedup = true;
    config.memo = true;
    config.maxBatch = batch;
    config.flushMicros = 200; // let the deadline trigger fire too
    config.topK = kCandidates;
    SearchService service(config, corpus.candidates);

    std::vector<std::future<QueryResult>> futures;
    futures.reserve(corpus.queries.size());
    for (const Graph &query : corpus.queries)
        futures.push_back(service.submit(query));

    for (size_t q = 0; q < futures.size(); ++q) {
        QueryResult result = futures[q].get();
        ASSERT_EQ(result.scores.size(), kCandidates);
        for (size_t c = 0; c < kCandidates; ++c) {
            EXPECT_EQ(result.scores[c], reference[q * kCandidates + c])
                << modelConfig(model).name << " threads=" << threads
                << " batch=" << batch << " q=" << q << " c=" << c;
        }
        EXPECT_GE(result.batchSize, 1u);
        EXPECT_LE(result.batchSize, batch);
    }
    service.shutdown();

    MetricsSnapshot snap = service.metrics();
    EXPECT_EQ(snap.completed, corpus.queries.size());
    EXPECT_EQ(snap.rejected, 0u);
    EXPECT_GT(snap.batches, 0u);
}

TEST(SearchService, BitIdenticalToSerialAcrossThreadsAndBatches)
{
    std::vector<double> reference =
        serialReferenceScores(ModelId::GraphSim);
    for (uint32_t threads : {1u, 2u, 8u}) {
        for (uint32_t batch : {1u, 4u, 32u}) {
            expectServiceMatchesReference(ModelId::GraphSim, reference,
                                          threads, batch);
        }
    }
    ThreadPool::instance().setThreads(0);
}

TEST(SearchService, BitIdenticalForEveryModel)
{
    for (ModelId model : allModels()) {
        std::vector<double> reference = serialReferenceScores(model);
        expectServiceMatchesReference(model, reference, 2, 4);
    }
    ThreadPool::instance().setThreads(0);
}

TEST(SearchService, TopKIsSortedAndConsistent)
{
    CloneSearchCorpus corpus = makeCloneSearchCorpus(
        DatasetId::AIDS, 1, 6);
    ServeConfig config;
    config.topK = 3;
    config.flushMicros = 200;
    SearchService service(config, corpus.candidates);
    QueryResult result = service.submit(corpus.queries[0]).get();
    ASSERT_EQ(result.scores.size(), 6u);
    ASSERT_EQ(result.topK.size(), 3u);
    for (size_t i = 0; i + 1 < result.topK.size(); ++i)
        EXPECT_GE(result.topK[i].score, result.topK[i + 1].score);
    for (const SearchHit &hit : result.topK) {
        ASSERT_LT(hit.candidate, result.scores.size());
        EXPECT_EQ(hit.score, result.scores[hit.candidate]);
    }
    // The best hit dominates all scores.
    for (double s : result.scores)
        EXPECT_GE(result.topK.front().score, s);
}

TEST(SearchService, EmptyCorpusYieldsEmptyResults)
{
    ServeConfig config;
    config.flushMicros = 200;
    SearchService service(config, {});
    CloneSearchCorpus corpus = makeCloneSearchCorpus(
        DatasetId::AIDS, 1, 1);
    QueryResult result = service.submit(corpus.queries[0]).get();
    EXPECT_TRUE(result.scores.empty());
    EXPECT_TRUE(result.topK.empty());
}

TEST(SearchService, SubmitAfterShutdownIsRejected)
{
    CloneSearchCorpus corpus = makeCloneSearchCorpus(
        DatasetId::AIDS, 1, 2);
    ServeConfig config;
    config.flushMicros = 200;
    SearchService service(config, corpus.candidates);
    service.shutdown();
    std::future<QueryResult> future = service.submit(corpus.queries[0]);
    EXPECT_THROW(future.get(), std::runtime_error);
    MetricsSnapshot snap = service.metrics();
    EXPECT_EQ(snap.rejected, 1u);
}

TEST(SearchService, ConcurrentSubmitAndShutdownLosesNothing)
{
    CloneSearchCorpus corpus = makeCloneSearchCorpus(
        DatasetId::AIDS, 4, 2);
    ServeConfig config;
    config.maxBatch = 4;
    config.flushMicros = 100;
    SearchService service(config, corpus.candidates);

    constexpr int kThreads = 4;
    constexpr int kPerThread = 6;
    std::atomic<uint64_t> completed{0};
    std::atomic<uint64_t> rejected{0};
    std::vector<std::thread> submitters;
    submitters.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        submitters.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                const Graph &query =
                    corpus.queries[static_cast<size_t>(t + i) %
                                   corpus.queries.size()];
                std::future<QueryResult> future = service.submit(query);
                try {
                    QueryResult result = future.get();
                    EXPECT_EQ(result.scores.size(),
                              corpus.candidates.size());
                    ++completed;
                } catch (const std::runtime_error &) {
                    ++rejected;
                }
            }
        });
    }
    // Race shutdown against the submitters: admitted requests must
    // still complete, late ones must reject — never hang, never drop.
    service.shutdown();
    for (std::thread &thread : submitters)
        thread.join();

    EXPECT_EQ(completed + rejected,
              static_cast<uint64_t>(kThreads) * kPerThread);
    MetricsSnapshot snap = service.metrics();
    EXPECT_EQ(snap.completed, completed.load());
    EXPECT_EQ(snap.rejected, rejected.load());
    EXPECT_EQ(snap.submitted, snap.completed + snap.rejected);
}

TEST(SearchService, MetricsReportLatencyAndCacheActivity)
{
    CloneSearchCorpus corpus = makeCloneSearchCorpus(
        DatasetId::AIDS, 3, 3);
    ServeConfig config;
    config.dedup = true;
    config.memo = true;
    config.maxBatch = 4;
    config.flushMicros = 200;
    SearchService service(config, corpus.candidates);
    LoadGenResult run =
        runClosedLoop(service, corpus.queries, 9, 2);
    service.shutdown();

    EXPECT_EQ(run.errors, 0u);
    EXPECT_EQ(run.metrics.completed, 9u);
    EXPECT_GT(run.metrics.qps, 0.0);
    EXPECT_GT(run.metrics.latencyP50Ms, 0.0);
    EXPECT_GE(run.metrics.latencyP95Ms, run.metrics.latencyP50Ms);
    EXPECT_GE(run.metrics.latencyP99Ms, run.metrics.latencyP95Ms);
    EXPECT_GE(run.metrics.latencyMaxMs, run.metrics.latencyP99Ms);
    // Every candidate recurs across requests: the memo must hit.
    EXPECT_GT(run.metrics.cacheHits, 0u);
    EXPECT_GT(run.metrics.cacheHitRate, 0.0);
    EXPECT_GT(run.metrics.dedupRowsTotal, 0u);
    std::string json = run.metrics.toJson();
    EXPECT_NE(json.find("\"completed\": 9"), std::string::npos);
    EXPECT_NE(json.find("\"latency_p99_ms\""), std::string::npos);
}

TEST(SearchService, OpenLoopScheduleIsDeterministic)
{
    CloneSearchCorpus corpus = makeCloneSearchCorpus(
        DatasetId::AIDS, 2, 2);
    ServeConfig config;
    config.maxBatch = 4;
    config.flushMicros = 200;
    SearchService service(config, corpus.candidates);
    LoadGenResult run =
        runOpenLoop(service, corpus.queries, 8, 200.0, 3);
    service.shutdown();
    EXPECT_EQ(run.errors, 0u);
    EXPECT_EQ(run.metrics.completed, 8u);
    EXPECT_DOUBLE_EQ(run.offeredQps, 200.0);
    EXPECT_GT(run.achievedQps, 0.0);
}

} // namespace
} // namespace cegma
