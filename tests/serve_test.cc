/**
 * @file
 * The serving subsystem's proof obligations:
 *   - the bounded sharded LRU keeps its byte-budget invariant and
 *     evicts least-recently-used first; its concurrent same-key insert
 *     (first-insert-wins) and eviction-during-lookup races are
 *     exercised at shard counts 1 and 16 (under TSan via ci.sh);
 *   - the bounded MemoCache evicts under pressure without changing a
 *     single produced bit;
 *   - the memo is structurally a no-op for cross-feedback models
 *     (GMN-Li never touches the embedding cache);
 *   - `SearchService` scores are bit-identical to a serial
 *     `runFunctional` at thread counts {1, 2, 8} x batch sizes
 *     {1, 4, 32};
 *   - the `StagePipeline` engine preserves FIFO order through every
 *     stage, really overlaps adjacent stages in wall clock (overlap
 *     identically 0 for a single stage), enforces depth-bounded
 *     backpressure, and keeps the service bit-identical to serial at
 *     every thread x batch x pipeline-depth point, depth 0 (the
 *     monolithic path) included (run under TSan and ASan by ci.sh);
 *   - micro-batcher flush/bound semantics, deadline-aware shedding,
 *     and the close-while-waiting / deadline-vs-size flush races (run
 *     under TSan by ci.sh);
 *   - concurrent submit/shutdown is safe (run under TSan by ci.sh) and
 *     loses no request: everything submitted is completed or rejected;
 *   - overload robustness under seeded fault injection: expired
 *     requests fail `DeadlineExceeded` *unscored*, shedding drops the
 *     least-budget requests, client retries recover injected failures
 *     with bit-identical scores, and the bounded shutdown drain fails
 *     still-queued promises instead of blocking forever;
 *   - metric scrapes racing shutdown/teardown never touch destroyed
 *     members (run under ASan by ci.sh).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "accel/runner.hh"
#include "common/parallel.hh"
#include "common/sharded_lru.hh"
#include "gmn/memo.hh"
#include "graph/dataset.hh"
#include "obs/metrics.hh"
#include "serve/batcher.hh"
#include "serve/errors.hh"
#include "serve/faults.hh"
#include "serve/loadgen.hh"
#include "serve/pipeline.hh"
#include "serve/service.hh"

namespace cegma {
namespace {

// ---- ShardedLruCache ------------------------------------------------

using IntCache = ShardedLruCache<int, int>;

std::shared_ptr<const int>
val(int v)
{
    return std::make_shared<const int>(v);
}

TEST(ShardedLru, BudgetNeverExceeded)
{
    IntCache cache(100, 4);
    for (int k = 0; k < 200; ++k) {
        cache.insert(k, val(k), static_cast<size_t>(1 + k % 13));
        ASSERT_LE(cache.bytes(), 100u) << "after insert " << k;
    }
    EXPECT_GT(cache.evictions(), 0u);
    EXPECT_GT(cache.size(), 0u);
}

TEST(ShardedLru, EvictsLeastRecentlyUsedFirst)
{
    // One shard makes the recency order global and testable.
    IntCache cache(30, 1);
    cache.insert(1, val(1), 10);
    cache.insert(2, val(2), 10);
    cache.insert(3, val(3), 10);
    // Touch 1 so 2 becomes the LRU entry.
    ASSERT_NE(cache.find(1), nullptr);
    cache.insert(4, val(4), 10);
    EXPECT_EQ(cache.find(2), nullptr); // evicted
    EXPECT_NE(cache.find(1), nullptr);
    EXPECT_NE(cache.find(3), nullptr);
    EXPECT_NE(cache.find(4), nullptr);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.bytes(), 30u);
}

TEST(ShardedLru, OversizedValueServedUncached)
{
    IntCache cache(100, 4); // per-shard budget: 25 bytes
    auto returned = cache.insert(7, val(7), 50);
    ASSERT_NE(returned, nullptr);
    EXPECT_EQ(*returned, 7); // caller still gets its value
    EXPECT_EQ(cache.find(7), nullptr);
    EXPECT_EQ(cache.oversized(), 1u);
    EXPECT_EQ(cache.bytes(), 0u);
    EXPECT_EQ(cache.size(), 0u);
}

TEST(ShardedLru, FirstInsertWins)
{
    IntCache cache(100, 1);
    auto first = cache.insert(5, val(50), 10);
    auto second = cache.insert(5, val(99), 10);
    EXPECT_EQ(*second, 50); // the resident value, not the loser's
    EXPECT_EQ(first.get(), second.get());
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.bytes(), 10u);
}

TEST(ShardedLru, TinyBudgetCollapsesShardsInsteadOfZeroing)
{
    // 3-byte budget across 8 requested shards: integer division used
    // to hand every shard a zero budget, which evicted each entry the
    // moment it was inserted. The cache must instead collapse to at
    // most 3 shards so the per-shard budget stays nonzero.
    IntCache cache(3, 8);
    cache.insert(1, val(1), 1);
    EXPECT_NE(cache.find(1), nullptr) << "1-byte value must be cached";
    for (int k = 2; k < 40; ++k) {
        cache.insert(k, val(k), 1);
        ASSERT_LE(cache.bytes(), 3u) << "after insert " << k;
    }
    EXPECT_GT(cache.size(), 0u);
    EXPECT_GT(cache.evictions(), 0u);
    EXPECT_EQ(cache.oversized(), 0u); // 1-byte values always fit
}

TEST(ShardedLru, OneByteBudgetStillCaches)
{
    IntCache cache(1, 16); // the most extreme collapse: one shard
    cache.insert(1, val(1), 1);
    EXPECT_NE(cache.find(1), nullptr);
    cache.insert(2, val(2), 1);
    EXPECT_EQ(cache.find(1), nullptr); // evicted by the 1-byte budget
    EXPECT_NE(cache.find(2), nullptr);
    EXPECT_LE(cache.bytes(), 1u);
}

TEST(ShardedLru, UnboundedWhenBudgetZero)
{
    IntCache cache(0, 2);
    for (int k = 0; k < 64; ++k)
        cache.insert(k, val(k), 1 << 20);
    EXPECT_EQ(cache.size(), 64u);
    EXPECT_EQ(cache.evictions(), 0u);
    EXPECT_EQ(cache.oversized(), 0u);
}

TEST(ShardedLru, ConcurrentSameKeyInsertFirstWinsUnderRace)
{
    // Many builders produce the same key at once (the memo's "every
    // batch pairs the same corpus graph" pattern): exactly one value
    // may become resident, and every racer must walk away holding that
    // resident value — never its own losing copy. Run under TSan by
    // ci.sh, at both the contended (1) and sharded (16) layouts.
    for (uint32_t shards : {1u, 16u}) {
        IntCache cache(1 << 20, shards);
        constexpr int kThreads = 8;
        constexpr int kKeys = 32;
        std::vector<std::shared_ptr<const int>> got(
            static_cast<size_t>(kThreads) * kKeys);
        std::vector<std::thread> threads;
        threads.reserve(kThreads);
        for (int t = 0; t < kThreads; ++t) {
            threads.emplace_back([&cache, &got, t] {
                for (int k = 0; k < kKeys; ++k) {
                    // Distinct payloads per racer: t * 1000 + k. Only
                    // one of the 8 payloads for key k may survive.
                    got[static_cast<size_t>(t) * kKeys + k] =
                        cache.insert(k, val(t * 1000 + k), 8);
                }
            });
        }
        for (auto &thread : threads)
            thread.join();

        EXPECT_EQ(cache.size(), static_cast<size_t>(kKeys));
        for (int k = 0; k < kKeys; ++k) {
            auto resident = cache.find(k);
            ASSERT_NE(resident, nullptr) << "key " << k;
            EXPECT_EQ(*resident % 1000, k);
            for (int t = 0; t < kThreads; ++t) {
                // First insert wins: every racer got the SAME object.
                EXPECT_EQ(got[static_cast<size_t>(t) * kKeys + k].get(),
                          resident.get())
                    << "shards=" << shards << " key=" << k
                    << " thread=" << t;
            }
        }
    }
}

TEST(ShardedLru, EvictionDuringConcurrentLookupKeepsValuesAlive)
{
    // Readers hold and dereference values while writers churn a tiny
    // budget that evicts constantly. shared_ptr handout means eviction
    // must never invalidate a value a reader is using; TSan (ci.sh)
    // checks the synchronization, the *p == k check the integrity.
    for (uint32_t shards : {1u, 16u}) {
        // ~8 resident 64-byte entries per shard, 256 live keys: every
        // shard is perpetually over budget and evicting.
        IntCache cache(static_cast<size_t>(64) * 8 * shards, shards);
        constexpr int kKeys = 256;
        std::atomic<bool> stop{false};
        std::atomic<int> mismatches{0};

        std::vector<std::thread> readers;
        for (int r = 0; r < 4; ++r) {
            readers.emplace_back([&] {
                for (int pass = 0; !stop.load(); ++pass) {
                    int k = pass % kKeys;
                    auto p = cache.find(k);
                    if (p != nullptr && *p != k)
                        mismatches.fetch_add(1);
                }
            });
        }
        std::vector<std::thread> writers;
        for (int w = 0; w < 4; ++w) {
            writers.emplace_back([&cache, w] {
                for (int pass = 0; pass < 200; ++pass) {
                    for (int k = w; k < kKeys; k += 4) {
                        auto p = cache.insert(k, val(k), 64);
                        if (p != nullptr)
                            EXPECT_EQ(*p, k);
                    }
                }
            });
        }
        for (auto &thread : writers)
            thread.join();
        stop.store(true);
        for (auto &thread : readers)
            thread.join();

        EXPECT_EQ(mismatches.load(), 0) << "shards=" << shards;
        EXPECT_GT(cache.evictions(), 0u) << "shards=" << shards;
        EXPECT_LE(cache.bytes(), 64u * 8u * shards)
            << "shards=" << shards;
    }
}

// ---- Bounded MemoCache in the functional path -----------------------

TEST(BoundedMemo, EvictsUnderPressureWithoutChangingBits)
{
    Dataset ds = makeCloneSearchDataset(DatasetId::AIDS, 5, 3);

    FunctionalOptions unbounded;
    unbounded.memo = true;
    FunctionalResult reference = runFunctional(ModelId::GraphSim, ds,
                                               unbounded);
    EXPECT_EQ(reference.memoEvictions, 0u);

    FunctionalOptions bounded = unbounded;
    // Small enough that the 8 distinct graphs' embedding chains cannot
    // all stay resident; one shard keeps the LRU order global.
    bounded.memoBytes = size_t{48} << 10;
    bounded.memoShards = 1;
    FunctionalResult result = runFunctional(ModelId::GraphSim, ds,
                                            bounded);

    EXPECT_GT(result.memoEvictions, 0u);
    EXPECT_LE(result.memoBytes, bounded.memoBytes);
    ASSERT_EQ(result.scores.size(), reference.scores.size());
    for (size_t i = 0; i < result.scores.size(); ++i)
        EXPECT_EQ(result.scores[i], reference.scores[i]) << "pair " << i;
}

TEST(BoundedMemo, CrossFeedbackModelNeverTouchesEmbeddingCache)
{
    Dataset ds = makeCloneSearchDataset(DatasetId::AIDS, 2, 2);

    // GMN-Li's embeddings depend on the partner graph: the memo must
    // skip the embedding cache entirely (lookups would be pure
    // overhead), while WL colorings stay memoizable.
    {
        MemoCache memo;
        auto model = makeModel(ModelId::GmnLi);
        InferenceOptions infer;
        infer.memo = &memo;
        model->setInferenceOptions(infer);
        for (const GraphPair &pair : ds.pairs)
            model->score(pair);
        EXPECT_EQ(memo.embeddingLookups(), 0u);
        EXPECT_GT(memo.wlLookups(), 0u);
    }

    // A non-cross-feedback model does use it.
    {
        MemoCache memo;
        auto model = makeModel(ModelId::GraphSim);
        InferenceOptions infer;
        infer.memo = &memo;
        model->setInferenceOptions(infer);
        for (const GraphPair &pair : ds.pairs)
            model->score(pair);
        EXPECT_GT(memo.embeddingLookups(), 0u);
    }
}

TEST(BoundedMemo, LookupTimingIsGatedOffByDefault)
{
    // Regression: the memo used to read the clock around every lookup
    // unconditionally, taxing consumers (runFunctional, benchmarks)
    // that never read lookupNs(). The accounting is now behind one
    // relaxed atomic flag, off by default — a cold cache must finish
    // many lookups without a single recorded nanosecond.
    Dataset ds = makeCloneSearchDataset(DatasetId::AIDS, 3, 2);
    MemoCache memo;
    EXPECT_FALSE(memo.lookupTimingEnabled());
    for (int round = 0; round < 16; ++round)
        for (const GraphPair &pair : ds.pairs)
            (void)memo.wl(pair.target, 3);
    EXPECT_GT(memo.wlLookups(), 0u);
    EXPECT_EQ(memo.lookupNs(), 0u);

    // Flipping the flag starts (not backfills) the accounting.
    memo.setLookupTimingEnabled(true);
    EXPECT_TRUE(memo.lookupTimingEnabled());
    for (int round = 0; round < 16; ++round)
        for (const GraphPair &pair : ds.pairs)
            (void)memo.wl(pair.target, 3);
    EXPECT_GT(memo.lookupNs(), 0u);
}

// ---- MicroBatcher ---------------------------------------------------

TEST(MicroBatcher, SizeTriggerSplitsIntoMaxBatchChunks)
{
    MicroBatcher<int> batcher(2, std::chrono::microseconds(1000000), 64);
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(batcher.enqueue(int{i}));
    EXPECT_EQ(batcher.nextBatch(), (std::vector<int>{0, 1}));
    EXPECT_EQ(batcher.nextBatch(), (std::vector<int>{2, 3}));
    batcher.close();
    EXPECT_EQ(batcher.nextBatch(), (std::vector<int>{4}));
    EXPECT_TRUE(batcher.nextBatch().empty()); // closed and drained
}

TEST(MicroBatcher, DeadlineFlushesPartialBatch)
{
    // maxBatch far above what arrives: only the deadline can flush.
    MicroBatcher<int> batcher(64, std::chrono::microseconds(500), 64);
    ASSERT_TRUE(batcher.enqueue(7));
    std::vector<int> batch = batcher.nextBatch();
    EXPECT_EQ(batch, (std::vector<int>{7}));
}

TEST(MicroBatcher, DepthBoundAndCloseRefuseAdmission)
{
    MicroBatcher<int> batcher(8, std::chrono::microseconds(1000), 2);
    EXPECT_TRUE(batcher.enqueue(1));
    EXPECT_TRUE(batcher.enqueue(2));
    EXPECT_FALSE(batcher.enqueue(3)); // at max_depth
    EXPECT_EQ(batcher.depth(), 2u);
    batcher.close();
    EXPECT_FALSE(batcher.enqueue(4)); // closed
    EXPECT_TRUE(batcher.closed());
}

TEST(MicroBatcher, ShedsLeastRemainingBudgetFirst)
{
    using Clock = std::chrono::steady_clock;
    Clock::time_point now = Clock::now();
    MicroBatcher<int> batcher(64, std::chrono::microseconds(1000000),
                              64, /*shed_watermark=*/2);
    std::vector<int> shed;
    ASSERT_TRUE(batcher.enqueue(1, now + std::chrono::hours(2), &shed));
    ASSERT_TRUE(batcher.enqueue(2, now + std::chrono::hours(1), &shed));
    EXPECT_TRUE(shed.empty()); // depth 2 == watermark: no shedding yet
    // Crossing the watermark sheds the earliest-deadline item (2), not
    // the newest arrival or the queue head.
    ASSERT_TRUE(batcher.enqueue(3, now + std::chrono::hours(3), &shed));
    EXPECT_EQ(shed, (std::vector<int>{2}));
    EXPECT_EQ(batcher.depth(), 2u);
    EXPECT_EQ(batcher.shedCount(), 1u);
    // A new arrival carrying the least budget is itself the victim.
    ASSERT_TRUE(
        batcher.enqueue(4, now + std::chrono::minutes(1), &shed));
    EXPECT_EQ(shed, (std::vector<int>{2, 4}));
    EXPECT_EQ(batcher.depth(), 2u);
    // The survivors are the two with the most remaining budget.
    batcher.close();
    EXPECT_EQ(batcher.nextBatch(), (std::vector<int>{1, 3}));
}

TEST(MicroBatcher, DeadlineLessItemsAreNeverShed)
{
    using Clock = std::chrono::steady_clock;
    MicroBatcher<int> batcher(64, std::chrono::microseconds(1000000),
                              64, /*shed_watermark=*/1);
    std::vector<int> shed;
    ASSERT_TRUE(batcher.enqueue(1, kNoDeadline, &shed));
    ASSERT_TRUE(batcher.enqueue(2, kNoDeadline, &shed));
    ASSERT_TRUE(batcher.enqueue(3, kNoDeadline, &shed));
    EXPECT_TRUE(shed.empty()); // above the watermark, but unsheddable
    EXPECT_EQ(batcher.depth(), 3u);
    // A deadline-carrying item among deadline-less ones is the only
    // candidate — and here it is the arrival itself.
    ASSERT_TRUE(batcher.enqueue(
        4, Clock::now() + std::chrono::seconds(1), &shed));
    EXPECT_EQ(shed, (std::vector<int>{4}));
    EXPECT_EQ(batcher.depth(), 3u);
}

TEST(MicroBatcher, FullQueueShedsInsteadOfRejectingWhenPossible)
{
    using Clock = std::chrono::steady_clock;
    Clock::time_point now = Clock::now();
    MicroBatcher<int> batcher(64, std::chrono::microseconds(1000000),
                              /*max_depth=*/2, /*shed_watermark=*/2);
    std::vector<int> shed;
    ASSERT_TRUE(batcher.enqueue(1, now + std::chrono::hours(1), &shed));
    ASSERT_TRUE(batcher.enqueue(2, now + std::chrono::hours(2), &shed));
    // Full queue + sheddable items: drop the least-budget one (1) to
    // admit the new arrival rather than bouncing it.
    ASSERT_TRUE(batcher.enqueue(3, now + std::chrono::hours(3), &shed));
    EXPECT_EQ(shed, (std::vector<int>{1}));
    EXPECT_EQ(batcher.depth(), 2u);
}

TEST(MicroBatcher, FullQueueWithNothingSheddableRejects)
{
    // Regression: a full queue whose waiters all carry kNoDeadline has
    // no shedding victim. The arrival must be refused outright — never
    // admitted over the depth bound, and never allowed to evict an
    // unsheddable waiter.
    MicroBatcher<int> batcher(64, std::chrono::microseconds(1000000),
                              /*max_depth=*/2, /*shed_watermark=*/2);
    std::vector<int> shed;
    ASSERT_TRUE(batcher.enqueue(1, kNoDeadline, &shed));
    ASSERT_TRUE(batcher.enqueue(2, kNoDeadline, &shed));
    EXPECT_FALSE(batcher.enqueue(3, kNoDeadline, &shed));
    EXPECT_TRUE(shed.empty());
    EXPECT_EQ(batcher.shedCount(), 0u);
    EXPECT_EQ(batcher.depth(), 2u);
    batcher.close();
    EXPECT_EQ(batcher.nextBatch(), (std::vector<int>{1, 2}));
}

TEST(MicroBatcher, CloseWhileConsumerWaitsReleasesIt)
{
    // Race close() against a consumer blocked in nextBatch() on an
    // empty queue — under TSan this is the close-while-waiting probe.
    for (int round = 0; round < 20; ++round) {
        MicroBatcher<int> batcher(8, std::chrono::microseconds(500000),
                                  64);
        std::atomic<bool> released{false};
        std::thread consumer([&] {
            std::vector<int> batch = batcher.nextBatch();
            EXPECT_TRUE(batch.empty());
            released.store(true);
        });
        std::this_thread::sleep_for(std::chrono::microseconds(
            100 * (round % 5))); // vary the interleaving
        batcher.close();
        consumer.join();
        EXPECT_TRUE(released.load());
    }
}

TEST(MicroBatcher, DeadlineAndSizeFlushRaceLosesNoItem)
{
    // Deadline flushes (short flush window) race size flushes (bursts
    // larger than max_batch) across concurrent producers; every item
    // must come out exactly once. TSan covers the locking.
    MicroBatcher<int> batcher(4, std::chrono::microseconds(200), 4096);
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 64;
    constexpr int kTotal = kProducers * kPerProducer;

    std::vector<std::atomic<int>> seen(kTotal);
    std::atomic<bool> done{false};
    std::thread consumer([&] {
        for (;;) {
            std::vector<int> batch = batcher.nextBatch();
            if (batch.empty())
                break; // closed and drained
            EXPECT_LE(batch.size(), 4u);
            for (int v : batch)
                seen[static_cast<size_t>(v)].fetch_add(1);
        }
        done.store(true);
    });

    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                ASSERT_TRUE(batcher.enqueue(p * kPerProducer + i));
                if (i % 16 == 15) {
                    // Let the deadline trigger fire on partial batches.
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(300));
                }
            }
        });
    }
    for (std::thread &producer : producers)
        producer.join();
    batcher.close();
    consumer.join();
    ASSERT_TRUE(done.load());
    for (int v = 0; v < kTotal; ++v)
        EXPECT_EQ(seen[static_cast<size_t>(v)].load(), 1) << "item " << v;
}

// ---- StagePipeline --------------------------------------------------

/** Work item counting how many stages have touched it. */
struct ProbeItem : PipelineItem
{
    int visits = 0;
};

TEST(Pipeline, RunsEveryStageInOrderAndCompletesFifo)
{
    std::mutex mu;
    std::vector<uint64_t> finished;
    std::vector<StagePipeline::Stage> stages;
    stages.push_back({"one", [](PipelineItem &item) {
        auto &probe = static_cast<ProbeItem &>(item);
        EXPECT_EQ(probe.visits, 0);
        ++probe.visits;
    }});
    stages.push_back({"two", [](PipelineItem &item) {
        auto &probe = static_cast<ProbeItem &>(item);
        EXPECT_EQ(probe.visits, 1);
        ++probe.visits;
    }});
    stages.push_back({"three", [&](PipelineItem &item) {
        auto &probe = static_cast<ProbeItem &>(item);
        EXPECT_EQ(probe.visits, 2);
        ++probe.visits;
        std::lock_guard<std::mutex> lock(mu);
        finished.push_back(item.seq);
    }});
    StagePipeline pipeline(std::move(stages), 2);
    constexpr uint64_t kItems = 16;
    for (uint64_t i = 0; i < kItems; ++i)
        pipeline.submit(std::make_unique<ProbeItem>());
    pipeline.drain();

    // FIFO end to end: per-stage queues are FIFO and each stage has
    // exactly one worker, so completion order is submission order.
    ASSERT_EQ(finished.size(), kItems);
    for (uint64_t i = 0; i < kItems; ++i)
        EXPECT_EQ(finished[i], i) << "completion slot " << i;

    PipelineStats stats = pipeline.stats();
    EXPECT_EQ(stats.submitted, kItems);
    EXPECT_EQ(stats.completed, kItems);
    ASSERT_EQ(stats.stages.size(), 3u);
    for (const PipelineStageStats &stage : stats.stages)
        EXPECT_EQ(stage.items, kItems);
    EXPECT_EQ(pipeline.inflight(), 0u);
    pipeline.drain(); // idempotent
}

TEST(Pipeline, AdjacentStagesOverlapInWallClock)
{
    // Two stages that each sleep 10 ms: once batch 0 advances to the
    // second stage, the first stage's worker immediately picks up
    // batch 1, so both sleeps run concurrently — the overlap is
    // structural, not scheduling luck. A serial executor (the
    // monolithic path) has overlapNs identically 0.
    const auto kStageSleep = std::chrono::milliseconds(10);
    std::vector<StagePipeline::Stage> stages;
    for (const char *name : {"embed", "match"}) {
        stages.push_back({name, [kStageSleep](PipelineItem &) {
            std::this_thread::sleep_for(kStageSleep);
        }});
    }
    StagePipeline pipeline(std::move(stages), 2);
    constexpr uint64_t kItems = 6;
    for (uint64_t i = 0; i < kItems; ++i)
        pipeline.submit(std::make_unique<ProbeItem>());
    pipeline.drain();

    PipelineStats stats = pipeline.stats();
    EXPECT_EQ(stats.completed, kItems);
    EXPECT_GT(stats.overlapNs, 0u);
    EXPECT_GE(stats.busyNs, stats.overlapNs);
    // Every stage slept kItems times; busy time cannot undercount it.
    for (const PipelineStageStats &stage : stats.stages)
        EXPECT_GE(stage.busyNs, kItems * 10'000'000ull / 2);
}

TEST(Pipeline, SingleStageNeverOverlaps)
{
    // The overlap gauge is the serial/pipelined discriminator: with
    // one stage there is never a second busy stage, so overlapNs must
    // stay exactly 0 no matter how many items flow through.
    std::vector<StagePipeline::Stage> stages;
    stages.push_back({"only", [](PipelineItem &) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }});
    StagePipeline pipeline(std::move(stages), 4);
    for (uint64_t i = 0; i < 8; ++i)
        pipeline.submit(std::make_unique<ProbeItem>());
    pipeline.drain();
    PipelineStats stats = pipeline.stats();
    EXPECT_EQ(stats.completed, 8u);
    EXPECT_GT(stats.busyNs, 0u);
    EXPECT_EQ(stats.overlapNs, 0u);
}

TEST(Pipeline, DepthOneBackpressureBoundsInflight)
{
    // At depth 1 with one stage, capacity is one executing + one
    // queued + one submitter blocked in submit() (its seq is stamped
    // before the blocking push). inflight() can never exceed 3 — the
    // bounded queue is real backpressure, not a buffer.
    StagePipeline *self = nullptr;
    std::atomic<uint64_t> maxSeen{0};
    std::vector<StagePipeline::Stage> stages;
    stages.push_back({"slow", [&](PipelineItem &) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        uint64_t inflight = self->inflight();
        uint64_t prev = maxSeen.load();
        while (inflight > prev &&
               !maxSeen.compare_exchange_weak(prev, inflight)) {
        }
    }});
    StagePipeline pipeline(std::move(stages), 1);
    self = &pipeline;
    constexpr uint64_t kItems = 12;
    for (uint64_t i = 0; i < kItems; ++i)
        pipeline.submit(std::make_unique<ProbeItem>());
    pipeline.drain();
    EXPECT_EQ(pipeline.stats().completed, kItems);
    EXPECT_LE(maxSeen.load(), 3u);
}

// ---- SearchService --------------------------------------------------

constexpr uint32_t kQueries = 5;
constexpr uint32_t kCandidates = 3;

/** Serial reference scores over the same (candidate, query) grid. */
std::vector<double>
serialReferenceScores(ModelId model)
{
    ThreadPool::instance().setThreads(1);
    Dataset ds = makeCloneSearchDataset(DatasetId::AIDS, kQueries,
                                        kCandidates);
    FunctionalResult result = runFunctional(model, ds);
    return result.scores;
}

/**
 * Submit every query to a fresh service and check each result against
 * the reference grid (`reference[q * C + c]` is query q vs candidate
 * c — the clone-search pair order). `pipeline_depth` 0 is the
 * monolithic batch path; >= 1 the StagePipeline.
 */
void
expectServiceMatchesReference(ModelId model,
                              const std::vector<double> &reference,
                              uint32_t threads, uint32_t batch,
                              uint32_t pipeline_depth = 2)
{
    ThreadPool::instance().setThreads(threads);
    CloneSearchCorpus corpus = makeCloneSearchCorpus(
        DatasetId::AIDS, kQueries, kCandidates);

    ServeConfig config;
    config.model = model;
    config.dedup = true;
    config.memo = true;
    config.maxBatch = batch;
    config.flushMicros = 200; // let the deadline trigger fire too
    config.topK = kCandidates;
    config.pipelineDepth = pipeline_depth;
    SearchService service(config, corpus.candidates);

    std::vector<std::future<QueryResult>> futures;
    futures.reserve(corpus.queries.size());
    for (const Graph &query : corpus.queries)
        futures.push_back(service.submit(query));

    for (size_t q = 0; q < futures.size(); ++q) {
        QueryResult result = futures[q].get();
        ASSERT_EQ(result.scores.size(), kCandidates);
        for (size_t c = 0; c < kCandidates; ++c) {
            EXPECT_EQ(result.scores[c], reference[q * kCandidates + c])
                << modelConfig(model).name << " threads=" << threads
                << " batch=" << batch << " depth=" << pipeline_depth
                << " q=" << q << " c=" << c;
        }
        EXPECT_GE(result.batchSize, 1u);
        EXPECT_LE(result.batchSize, batch);
    }
    service.shutdown();

    MetricsSnapshot snap = service.metrics();
    EXPECT_EQ(snap.completed, corpus.queries.size());
    EXPECT_EQ(snap.rejected, 0u);
    EXPECT_GT(snap.batches, 0u);
}

TEST(SearchService, BitIdenticalToSerialAcrossThreadsAndBatches)
{
    std::vector<double> reference =
        serialReferenceScores(ModelId::GraphSim);
    for (uint32_t threads : {1u, 2u, 8u}) {
        for (uint32_t batch : {1u, 4u, 32u}) {
            expectServiceMatchesReference(ModelId::GraphSim, reference,
                                          threads, batch);
        }
    }
    ThreadPool::instance().setThreads(0);
}

TEST(Pipeline, BitIdenticalAcrossThreadsBatchesAndDepths)
{
    // The determinism bar for the pipelined engine: every pool size ×
    // batch size × pipeline depth (0 = the monolithic path) produces
    // the exact bits of a serial runFunctional. Pipelining may change
    // *when* a batch's stages run, never *what* they compute. Run
    // under TSan and ASan+UBSan by ci.sh.
    std::vector<double> reference =
        serialReferenceScores(ModelId::GraphSim);
    for (uint32_t threads : {1u, 2u, 8u}) {
        for (uint32_t batch : {1u, 4u, 32u}) {
            for (uint32_t depth : {0u, 1u, 2u, 4u}) {
                expectServiceMatchesReference(ModelId::GraphSim,
                                              reference, threads, batch,
                                              depth);
            }
        }
    }
    ThreadPool::instance().setThreads(0);
}

TEST(Pipeline, OverlapAndWorkspaceGaugesAreExported)
{
    // The pipelined service must expose its engine through the PR-4
    // registry: serve.pipeline.* and workspace.* gauges present, depth
    // echoing the config, and batches matching the batch counter.
    CloneSearchCorpus corpus = makeCloneSearchCorpus(
        DatasetId::AIDS, kQueries, kCandidates);
    ServeConfig config;
    config.dedup = true;
    config.memo = true;
    config.maxBatch = 4;
    config.flushMicros = 200;
    config.pipelineDepth = 2;
    SearchService service(config, corpus.candidates);
    std::vector<std::future<QueryResult>> futures;
    for (const Graph &query : corpus.queries)
        futures.push_back(service.submit(query));
    for (auto &future : futures)
        (void)future.get();
    service.shutdown();

    std::map<std::string, double> gauges;
    obs::RegistrySnapshot snap = service.registry().snapshot();
    for (const obs::MetricValue &m : snap.metrics)
        gauges[m.name] = m.kind == obs::MetricValue::Kind::FloatGauge
                             ? m.fgauge
                             : static_cast<double>(m.gauge);
    ASSERT_TRUE(gauges.count("serve.pipeline.depth"));
    EXPECT_DOUBLE_EQ(gauges["serve.pipeline.depth"], 2.0);
    ASSERT_TRUE(gauges.count("serve.pipeline.batches"));
    EXPECT_GE(gauges["serve.pipeline.batches"], 1.0);
    ASSERT_TRUE(gauges.count("serve.pipeline.match_busy_us"));
    EXPECT_GT(gauges["serve.pipeline.match_busy_us"], 0.0);
    ASSERT_TRUE(gauges.count("workspace.hits"));
    ASSERT_TRUE(gauges.count("workspace.misses"));
    // The serving hot path recycles tensor storage: a warm service
    // must have served at least one allocation from a free list.
    EXPECT_GT(gauges["workspace.hits"], 0.0);
}

TEST(SearchService, BitIdenticalForEveryModel)
{
    for (ModelId model : allModels()) {
        std::vector<double> reference = serialReferenceScores(model);
        expectServiceMatchesReference(model, reference, 2, 4);
    }
    ThreadPool::instance().setThreads(0);
}

TEST(SearchService, TopKIsSortedAndConsistent)
{
    CloneSearchCorpus corpus = makeCloneSearchCorpus(
        DatasetId::AIDS, 1, 6);
    ServeConfig config;
    config.topK = 3;
    config.flushMicros = 200;
    SearchService service(config, corpus.candidates);
    QueryResult result = service.submit(corpus.queries[0]).get();
    ASSERT_EQ(result.scores.size(), 6u);
    ASSERT_EQ(result.topK.size(), 3u);
    for (size_t i = 0; i + 1 < result.topK.size(); ++i)
        EXPECT_GE(result.topK[i].score, result.topK[i + 1].score);
    for (const SearchHit &hit : result.topK) {
        ASSERT_LT(hit.candidate, result.scores.size());
        EXPECT_EQ(hit.score, result.scores[hit.candidate]);
    }
    // The best hit dominates all scores.
    for (double s : result.scores)
        EXPECT_GE(result.topK.front().score, s);
}

TEST(SearchService, EmptyCorpusYieldsEmptyResults)
{
    ServeConfig config;
    config.flushMicros = 200;
    SearchService service(config, {});
    CloneSearchCorpus corpus = makeCloneSearchCorpus(
        DatasetId::AIDS, 1, 1);
    QueryResult result = service.submit(corpus.queries[0]).get();
    EXPECT_TRUE(result.scores.empty());
    EXPECT_TRUE(result.topK.empty());
}

TEST(SearchService, SubmitAfterShutdownIsRejected)
{
    CloneSearchCorpus corpus = makeCloneSearchCorpus(
        DatasetId::AIDS, 1, 2);
    ServeConfig config;
    config.flushMicros = 200;
    SearchService service(config, corpus.candidates);
    service.shutdown();
    std::future<QueryResult> future = service.submit(corpus.queries[0]);
    EXPECT_THROW(future.get(), std::runtime_error);
    MetricsSnapshot snap = service.metrics();
    EXPECT_EQ(snap.rejected, 1u);
}

TEST(SearchService, ConcurrentSubmitAndShutdownLosesNothing)
{
    CloneSearchCorpus corpus = makeCloneSearchCorpus(
        DatasetId::AIDS, 4, 2);
    ServeConfig config;
    config.maxBatch = 4;
    config.flushMicros = 100;
    SearchService service(config, corpus.candidates);

    constexpr int kThreads = 4;
    constexpr int kPerThread = 6;
    std::atomic<uint64_t> completed{0};
    std::atomic<uint64_t> rejected{0};
    std::vector<std::thread> submitters;
    submitters.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        submitters.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                const Graph &query =
                    corpus.queries[static_cast<size_t>(t + i) %
                                   corpus.queries.size()];
                std::future<QueryResult> future = service.submit(query);
                try {
                    QueryResult result = future.get();
                    EXPECT_EQ(result.scores.size(),
                              corpus.candidates.size());
                    ++completed;
                } catch (const std::runtime_error &) {
                    ++rejected;
                }
            }
        });
    }
    // Race shutdown against the submitters: admitted requests must
    // still complete, late ones must reject — never hang, never drop.
    service.shutdown();
    for (std::thread &thread : submitters)
        thread.join();

    EXPECT_EQ(completed + rejected,
              static_cast<uint64_t>(kThreads) * kPerThread);
    MetricsSnapshot snap = service.metrics();
    EXPECT_EQ(snap.completed, completed.load());
    EXPECT_EQ(snap.rejected, rejected.load());
    EXPECT_EQ(snap.submitted, snap.completed + snap.rejected);
}

TEST(SearchService, MetricsReportLatencyAndCacheActivity)
{
    CloneSearchCorpus corpus = makeCloneSearchCorpus(
        DatasetId::AIDS, 3, 3);
    ServeConfig config;
    config.dedup = true;
    config.memo = true;
    config.maxBatch = 4;
    config.flushMicros = 200;
    SearchService service(config, corpus.candidates);
    LoadGenResult run =
        runClosedLoop(service, corpus.queries, 9, 2);
    service.shutdown();

    EXPECT_EQ(run.errors, 0u);
    EXPECT_EQ(run.metrics.completed, 9u);
    EXPECT_GT(run.metrics.qps, 0.0);
    EXPECT_GT(run.metrics.latencyP50Ms, 0.0);
    EXPECT_GE(run.metrics.latencyP95Ms, run.metrics.latencyP50Ms);
    EXPECT_GE(run.metrics.latencyP99Ms, run.metrics.latencyP95Ms);
    EXPECT_GE(run.metrics.latencyMaxMs, run.metrics.latencyP99Ms);
    // Every candidate recurs across requests: the memo must hit.
    EXPECT_GT(run.metrics.cacheHits, 0u);
    EXPECT_GT(run.metrics.cacheHitRate, 0.0);
    EXPECT_GT(run.metrics.dedupRowsTotal, 0u);
    std::string json = run.metrics.toJson();
    EXPECT_NE(json.find("\"completed\": 9"), std::string::npos);
    EXPECT_NE(json.find("\"latency_p99_ms\""), std::string::npos);
}

TEST(SearchService, OpenLoopScheduleIsDeterministic)
{
    CloneSearchCorpus corpus = makeCloneSearchCorpus(
        DatasetId::AIDS, 2, 2);
    ServeConfig config;
    config.maxBatch = 4;
    config.flushMicros = 200;
    SearchService service(config, corpus.candidates);
    LoadGenResult run =
        runOpenLoop(service, corpus.queries, 8, 200.0, 3);
    service.shutdown();
    EXPECT_EQ(run.errors, 0u);
    EXPECT_EQ(run.metrics.completed, 8u);
    EXPECT_DOUBLE_EQ(run.offeredQps, 200.0);
    EXPECT_GT(run.achievedQps, 0.0);
}

// ---- topKHits (NaN strict-weak-ordering regression) -----------------

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(TopKHits, NanScoresOrderLastDeterministically)
{
    std::vector<SearchHit> hits =
        topKHits({1.0, kNaN, 3.0, kNaN, 2.0}, 5);
    ASSERT_EQ(hits.size(), 5u);
    EXPECT_EQ(hits[0].candidate, 2u); // 3.0
    EXPECT_EQ(hits[1].candidate, 4u); // 2.0
    EXPECT_EQ(hits[2].candidate, 0u); // 1.0
    // NaNs after every real score, ordered by index among themselves.
    EXPECT_EQ(hits[3].candidate, 1u);
    EXPECT_EQ(hits[4].candidate, 3u);
    EXPECT_TRUE(std::isnan(hits[3].score));
    EXPECT_TRUE(std::isnan(hits[4].score));
}

TEST(TopKHits, NanNeverDisplacesRealScoresFromTopK)
{
    std::vector<SearchHit> hits = topKHits({kNaN, 0.5, kNaN, 0.25}, 2);
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0].candidate, 1u);
    EXPECT_EQ(hits[1].candidate, 3u);
}

TEST(TopKHits, ManyNansDoNotCorruptPartialSort)
{
    // The pre-fix comparator (`a.score > b.score`) was not a strict
    // weak ordering once NaN appeared: NaN compares false both ways,
    // so "equivalence" lost transitivity and std::partial_sort was
    // undefined behavior. Heavily NaN-laced inputs exercise the heap
    // paths where that UB actually bit.
    std::vector<double> scores;
    for (int i = 0; i < 101; ++i)
        scores.push_back(i % 3 == 0 ? kNaN
                                    : static_cast<double>(i % 17));
    std::vector<SearchHit> hits =
        topKHits(scores, static_cast<uint32_t>(scores.size()));
    ASSERT_EQ(hits.size(), scores.size());
    bool seen_nan = false;
    for (size_t i = 0; i < hits.size(); ++i) {
        if (std::isnan(hits[i].score)) {
            seen_nan = true;
        } else {
            EXPECT_FALSE(seen_nan)
                << "real score after a NaN at position " << i;
            if (i > 0 && !std::isnan(hits[i - 1].score)) {
                EXPECT_GE(hits[i - 1].score, hits[i].score);
            }
        }
        if (std::isnan(hits[i].score)) {
            EXPECT_TRUE(std::isnan(scores[hits[i].candidate]));
        } else {
            EXPECT_EQ(hits[i].score, scores[hits[i].candidate]);
        }
    }
    // All-NaN input: pure index order.
    std::vector<SearchHit> all_nan = topKHits({kNaN, kNaN, kNaN}, 3);
    ASSERT_EQ(all_nan.size(), 3u);
    for (uint32_t i = 0; i < 3; ++i)
        EXPECT_EQ(all_nan[i].candidate, i);
}

// ---- Overload robustness (deadlines / shedding / faults / drain) ----

/** The `RequestErrorCode` a failed future throws, or a test failure. */
RequestErrorCode
failureCode(std::future<QueryResult> &future)
{
    try {
        future.get();
    } catch (const RequestError &error) {
        return error.code();
    } catch (const std::exception &error) {
        ADD_FAILURE() << "expected RequestError, got: " << error.what();
        return RequestErrorCode::Rejected;
    }
    ADD_FAILURE() << "expected a failed future, got a result";
    return RequestErrorCode::Rejected;
}

TEST(Overload, SpentDeadlineBudgetFailsAtAdmissionUnscored)
{
    CloneSearchCorpus corpus =
        makeCloneSearchCorpus(DatasetId::AIDS, 1, 2);
    ServeConfig config;
    config.flushMicros = 200;
    SearchService service(config, corpus.candidates);

    std::future<QueryResult> future =
        service.submit(corpus.queries[0], -1.0);
    EXPECT_EQ(failureCode(future), RequestErrorCode::DeadlineExceeded);
    service.shutdown();

    MetricsSnapshot snap = service.metrics();
    EXPECT_EQ(snap.expired, 1u);
    EXPECT_EQ(snap.completed, 0u);
    EXPECT_EQ(snap.batches, 0u); // never reached scoring
    std::string json = snap.toJson();
    EXPECT_NE(json.find("\"expired\": 1"), std::string::npos);
}

TEST(Overload, ExpiredWhileQueuedFailsWithoutBeingScored)
{
    CloneSearchCorpus corpus =
        makeCloneSearchCorpus(DatasetId::AIDS, 2, 2);

    // Deterministically wedge the first batch for 300 ms: a request
    // with a 20 ms budget *must* expire while it rides that batch.
    FaultConfig fault_config;
    fault_config.stallBatches = 1;
    fault_config.stallMicros = 300000;
    FaultInjector faults(fault_config);

    ServeConfig config;
    config.maxBatch = 1;
    config.flushMicros = 100;
    config.faults = &faults;
    SearchService service(config, corpus.candidates);

    std::future<QueryResult> doomed =
        service.submit(corpus.queries[0], 20.0);
    EXPECT_EQ(failureCode(doomed), RequestErrorCode::DeadlineExceeded);
    EXPECT_EQ(faults.injectedStalls(), 1u);

    // The next request rides batch 2 (no stall) and completes — the
    // expired one did not poison the dispatcher.
    QueryResult ok = service.submit(corpus.queries[1]).get();
    EXPECT_EQ(ok.scores.size(), corpus.candidates.size());
    service.shutdown();

    MetricsSnapshot snap = service.metrics();
    EXPECT_EQ(snap.expired, 1u);
    EXPECT_EQ(snap.completed, 1u);
    // The expired request was never scored: the only flushed scoring
    // pass is the survivor's.
    EXPECT_EQ(snap.batches, 1u);
}

TEST(Overload, SheddingDropsLeastBudgetRequestsUnderPressure)
{
    CloneSearchCorpus corpus =
        makeCloneSearchCorpus(DatasetId::AIDS, 4, 2);

    // Wedge the dispatcher on the first batch so later submits pile up
    // behind it and cross the shed watermark.
    FaultConfig fault_config;
    fault_config.stallBatches = 1;
    fault_config.stallMicros = 500000;
    FaultInjector faults(fault_config);

    ServeConfig config;
    config.maxBatch = 1;
    config.flushMicros = 100;
    config.shedWatermark = 2;
    config.faults = &faults;
    SearchService service(config, corpus.candidates);

    // Occupies the dispatcher (popped, then stalled 500 ms).
    std::future<QueryResult> in_flight =
        service.submit(corpus.queries[0], 60000.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    // Three queued requests cross the watermark (2): the one with the
    // least remaining budget — r_small, 2 s — is shed; the others have
    // hours of budget and survive the stall comfortably.
    std::future<QueryResult> r_big =
        service.submit(corpus.queries[1], 3600000.0);
    std::future<QueryResult> r_small =
        service.submit(corpus.queries[2], 2000.0);
    std::future<QueryResult> r_medium =
        service.submit(corpus.queries[3], 7200000.0);

    EXPECT_EQ(failureCode(r_small), RequestErrorCode::Shed);
    EXPECT_EQ(in_flight.get().scores.size(), corpus.candidates.size());
    EXPECT_EQ(r_big.get().scores.size(), corpus.candidates.size());
    EXPECT_EQ(r_medium.get().scores.size(), corpus.candidates.size());
    service.shutdown();

    MetricsSnapshot snap = service.metrics();
    EXPECT_EQ(snap.shed, 1u);
    EXPECT_EQ(snap.completed, 3u);
    EXPECT_EQ(snap.expired, 0u);
}

TEST(Overload, RetriesRecoverInjectedFailuresWithIdenticalBits)
{
    constexpr uint32_t kNumQueries = 3;
    constexpr uint32_t kNumCandidates = 3;
    constexpr int kRequests = 12;
    CloneSearchCorpus corpus = makeCloneSearchCorpus(
        DatasetId::AIDS, kNumQueries, kNumCandidates);

    // Reference scores from a fault-free service.
    std::vector<std::vector<double>> reference;
    {
        ServeConfig config;
        config.flushMicros = 200;
        SearchService service(config, corpus.candidates);
        for (int r = 0; r < kRequests; ++r) {
            reference.push_back(
                service
                    .submit(corpus.queries[static_cast<size_t>(r) %
                                           kNumQueries])
                    .get()
                    .scores);
        }
    }

    // The same requests against a service that spuriously fails ~30%
    // of them (seeded, so the injected pattern is reproducible), with
    // a client retry loop absorbing the failures.
    FaultConfig fault_config;
    fault_config.seed = 42;
    fault_config.errorProb = 0.3;
    FaultInjector faults(fault_config);

    ServeConfig config;
    config.flushMicros = 200;
    config.faults = &faults;
    SearchService service(config, corpus.candidates);

    int client_retries = 0;
    for (int r = 0; r < kRequests; ++r) {
        const Graph &query =
            corpus.queries[static_cast<size_t>(r) % kNumQueries];
        std::vector<double> scores;
        for (int attempt = 0;; ++attempt) {
            ASSERT_LT(attempt, 40) << "retries did not converge";
            std::future<QueryResult> future = service.submit(query);
            try {
                scores = future.get().scores;
                break;
            } catch (const RequestError &error) {
                ASSERT_EQ(error.code(), RequestErrorCode::Injected);
                ASSERT_TRUE(error.retryable());
                ++client_retries;
            }
        }
        // Recovered results carry exactly the bits of a run that never
        // saw a fault — retries change *when* a score is computed,
        // never what it is.
        EXPECT_EQ(scores, reference[static_cast<size_t>(r)])
            << "request " << r;
    }
    service.shutdown();

    EXPECT_GT(faults.injectedErrors(), 0u) << "seed 42 must inject";
    EXPECT_EQ(static_cast<uint64_t>(client_retries),
              faults.injectedErrors());
}

TEST(Overload, LoadgenRetryPolicyAbsorbsInjectedFailures)
{
    CloneSearchCorpus corpus =
        makeCloneSearchCorpus(DatasetId::AIDS, 3, 2);

    FaultConfig fault_config;
    fault_config.seed = 42;
    fault_config.errorProb = 0.3;
    FaultInjector faults(fault_config);

    ServeConfig config;
    config.flushMicros = 200;
    config.faults = &faults;
    SearchService service(config, corpus.candidates);

    RetryPolicy retry;
    retry.maxAttempts = 10;
    retry.baseBackoffMs = 0.1;
    retry.maxBackoffMs = 1.0;
    LoadGenResult run =
        runClosedLoop(service, corpus.queries, 16, 1, retry, 7);
    service.shutdown();

    EXPECT_GT(faults.injectedErrors(), 0u) << "seed 42 must inject";
    EXPECT_EQ(run.errors, 0u) << "every injected failure must recover";
    EXPECT_EQ(run.giveups, 0u);
    EXPECT_EQ(run.retries, faults.injectedErrors());
    // Client retries flow into the service registry with the server
    // counters: cegma_serve --json / --prom report all three.
    EXPECT_EQ(run.metrics.retries, run.retries);
    EXPECT_EQ(run.metrics.completed, 16u);
}

TEST(Overload, BoundedDrainFailsQueuedRequestsInsteadOfBlocking)
{
    CloneSearchCorpus corpus =
        makeCloneSearchCorpus(DatasetId::AIDS, 3, 2);

    // Wedge the dispatcher on the first batch for 600 ms; the drain is
    // bounded at 50 ms, so shutdown must abort and fail the two still
    // -queued requests rather than wait out the stall.
    FaultConfig fault_config;
    fault_config.stallBatches = 1;
    fault_config.stallMicros = 600000;
    FaultInjector faults(fault_config);

    ServeConfig config;
    config.maxBatch = 1;
    config.flushMicros = 100;
    config.drainTimeoutMs = 50.0;
    config.faults = &faults;
    SearchService service(config, corpus.candidates);

    std::future<QueryResult> in_flight =
        service.submit(corpus.queries[0]);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    std::future<QueryResult> queued_a =
        service.submit(corpus.queries[1]);
    std::future<QueryResult> queued_b =
        service.submit(corpus.queries[2]);

    auto shutdown_started = std::chrono::steady_clock::now();
    service.shutdown();
    double shutdown_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() -
                             shutdown_started)
                             .count();
    // Bounded: ~50 ms drain + the in-flight batch, never the queued
    // backlog. Generous ceiling for sanitizer builds.
    EXPECT_LT(shutdown_ms, 5000.0);

    // The batch already in flight still completes at join...
    EXPECT_EQ(in_flight.get().scores.size(), corpus.candidates.size());
    // ...while the still-queued requests fail fast, non-retryably.
    for (std::future<QueryResult> *future : {&queued_a, &queued_b}) {
        try {
            future->get();
            ADD_FAILURE() << "queued request must fail on drain timeout";
        } catch (const RequestError &error) {
            EXPECT_EQ(error.code(), RequestErrorCode::DrainTimeout);
            EXPECT_FALSE(error.retryable());
        }
    }
    MetricsSnapshot snap = service.metrics();
    EXPECT_EQ(snap.drainDropped, 2u);
    EXPECT_EQ(snap.completed, 1u);
}

TEST(Overload, MetricScrapesRacingShutdownNeverTouchDeadMembers)
{
    // The regression this pins down: the batcher (a provider-gauge
    // target) used to be declared after the metrics registry, so a
    // scrape during teardown polled a destroyed member. Scrape
    // continuously across shutdown(); ASan (ci.sh tier 3) turns any
    // lifetime slip into a hard failure.
    CloneSearchCorpus corpus =
        makeCloneSearchCorpus(DatasetId::AIDS, 2, 2);
    ServeConfig config;
    config.flushMicros = 200;
    auto service =
        std::make_unique<SearchService>(config, corpus.candidates);

    std::atomic<bool> stop{false};
    std::thread scraper([&] {
        while (!stop.load(std::memory_order_acquire)) {
            obs::RegistrySnapshot snap = service->registry().snapshot();
            std::string prom = snap.toPrometheus();
            EXPECT_NE(prom.find("serve_queue_depth"),
                      std::string::npos);
        }
    });

    for (int r = 0; r < 6; ++r) {
        service
            ->submit(
                corpus.queries[static_cast<size_t>(r) %
                               corpus.queries.size()])
            .get();
    }
    service->shutdown();
    // Post-shutdown scrapes read the frozen gauges for a while...
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    stop.store(true, std::memory_order_release);
    scraper.join();
    // ...and the frozen values match a direct snapshot.
    MetricsSnapshot final_snap = service->metrics();
    EXPECT_EQ(final_snap.completed, 6u);
    service.reset();
}

// ---- Live telemetry plane -------------------------------------------

/** One blocking loopback HTTP exchange ("" on connect failure). */
std::string
adminGet(int port, const std::string &path)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "";
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return "";
    }
    std::string request = "GET " + path +
                          " HTTP/1.1\r\nHost: t\r\n"
                          "Connection: close\r\n\r\n";
    size_t sent = 0;
    while (sent < request.size()) {
        ssize_t n = ::send(fd, request.data() + sent,
                           request.size() - sent, 0);
        if (n <= 0)
            break;
        sent += static_cast<size_t>(n);
    }
    std::string response;
    char buf[4096];
    for (;;) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        response.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return response;
}

TEST(Telemetry, BitIdenticalWithFullTelemetryEnabled)
{
    // The determinism contract: admin server + attribution + SLO
    // tracking are observational only — every score still matches the
    // serial oracle bit for bit.
    std::vector<double> reference =
        serialReferenceScores(ModelId::GraphSim);
    constexpr uint32_t kThreads = 8;
    ThreadPool::instance().setThreads(kThreads);
    CloneSearchCorpus corpus = makeCloneSearchCorpus(
        DatasetId::AIDS, kQueries, kCandidates);

    ServeConfig config;
    config.model = ModelId::GraphSim;
    config.dedup = true;
    config.memo = true;
    config.maxBatch = 4;
    config.flushMicros = 200;
    config.topK = kCandidates;
    config.adminPort = 0;
    config.attribution = true;
    config.slo.targetMs = 100.0;
    config.slo.objective = 0.99;
    SearchService service(config, corpus.candidates);
    ASSERT_GT(service.adminPort(), 0);

    std::vector<std::future<QueryResult>> futures;
    futures.reserve(corpus.queries.size());
    for (const Graph &query : corpus.queries)
        futures.push_back(service.submit(query));

    std::set<uint64_t> ids;
    for (size_t q = 0; q < futures.size(); ++q) {
        QueryResult result = futures[q].get();
        ASSERT_EQ(result.scores.size(), kCandidates);
        for (size_t c = 0; c < kCandidates; ++c) {
            EXPECT_EQ(result.scores[c], reference[q * kCandidates + c])
                << "q=" << q << " c=" << c;
        }
        // The critical-path breakdown is filled and self-consistent.
        const obs::CriticalPath &cp = result.breakdown;
        EXPECT_GT(cp.requestId, 0u);
        ids.insert(cp.requestId);
        EXPECT_GT(cp.totalUs, 0u);
        EXPECT_LE(cp.queueUs, cp.totalUs);
        EXPECT_EQ(cp.batchSize, result.batchSize);
        // Stage times are thread-time: bounded by wall time times the
        // pool width (plus timer-granularity slack).
        EXPECT_LE(cp.stageSumUs(), cp.totalUs * kThreads + 1000)
            << "q=" << q;
    }
    // Request ids are unique across the run.
    EXPECT_EQ(ids.size(), futures.size());

    service.shutdown();
    ThreadPool::instance().setThreads(0);
}

TEST(Telemetry, AdminEndpointsServeAndStopWithService)
{
    CloneSearchCorpus corpus =
        makeCloneSearchCorpus(DatasetId::AIDS, 3, 2);
    ServeConfig config;
    config.flushMicros = 200;
    config.adminPort = 0;
    config.attribution = true;
    config.slo.targetMs = 50.0;
    SearchService service(config, corpus.candidates);
    int port = service.adminPort();
    ASSERT_GT(port, 0);

    for (const Graph &query : corpus.queries)
        service.submit(query).get();

    std::string health = adminGet(port, "/healthz");
    EXPECT_NE(health.find("HTTP/1.1 200"), std::string::npos) << health;
    EXPECT_NE(health.find("ok"), std::string::npos) << health;

    std::string ready = adminGet(port, "/readyz");
    EXPECT_NE(ready.find("HTTP/1.1 200"), std::string::npos) << ready;

    std::string metrics = adminGet(port, "/metrics");
    EXPECT_NE(metrics.find("HTTP/1.1 200"), std::string::npos);
    EXPECT_NE(metrics.find("cegma_build_info{"), std::string::npos);
    EXPECT_NE(metrics.find("serve_requests_completed 3"),
              std::string::npos)
        << metrics;
    EXPECT_NE(metrics.find("serve_win1m_p99_us"), std::string::npos);
    EXPECT_NE(metrics.find("serve_slo_burn_win1m"), std::string::npos);

    std::string varz = adminGet(port, "/varz");
    EXPECT_NE(varz.find("HTTP/1.1 200"), std::string::npos);
    EXPECT_NE(varz.find("application/json"), std::string::npos);
    EXPECT_NE(varz.find("\"serve.requests.completed\": 3"),
              std::string::npos)
        << varz;

    std::string statusz = adminGet(port, "/statusz");
    EXPECT_NE(statusz.find("HTTP/1.1 200"), std::string::npos);
    EXPECT_NE(statusz.find("\"simd\""), std::string::npos) << statusz;
    EXPECT_NE(statusz.find("\"corpus_epoch\""), std::string::npos);
    EXPECT_NE(statusz.find("\"draining\": false"), std::string::npos)
        << statusz;

    std::string tracez = adminGet(port, "/tracez");
    EXPECT_NE(tracez.find("HTTP/1.1 200"), std::string::npos);
    EXPECT_NE(tracez.find("\"slowest\""), std::string::npos) << tracez;
    EXPECT_NE(tracez.find("\"stage_sum_us\""), std::string::npos)
        << tracez;

    // The exemplar store holds every request (3 < top-K), slowest
    // first, with wall-time-consistent stage sums.
    std::vector<obs::CriticalPath> slow = service.tailExemplars();
    ASSERT_EQ(slow.size(), 3u);
    for (size_t i = 0; i + 1 < slow.size(); ++i)
        EXPECT_GE(slow[i].totalUs, slow[i + 1].totalUs);
    for (const obs::CriticalPath &cp : slow) {
        EXPECT_GT(cp.totalUs, 0u);
        EXPECT_LE(cp.queueUs, cp.totalUs);
    }

    // Shutdown stops the admin server with the service: connections
    // are refused afterwards, never served stale state.
    service.shutdown();
    EXPECT_TRUE(adminGet(port, "/healthz").empty());
}

} // namespace
} // namespace cegma
