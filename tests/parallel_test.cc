/**
 * @file
 * Tests for the parallel runtime: pool lifecycle/reuse, exception
 * propagation out of parallelFor, chunking edge cases, and the
 * bit-exact determinism guarantee of the hot kernels across thread
 * counts (1/2/8).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "emf/emf.hh"
#include "gmn/similarity.hh"
#include "tensor/matrix.hh"

namespace cegma {
namespace {

/** Restore the pool to a known state after each test. */
class ParallelTest : public ::testing::Test
{
  protected:
    void TearDown() override { ThreadPool::instance().setThreads(1); }
};

TEST_F(ParallelTest, CoversRangeExactlyOnce)
{
    ThreadPool::instance().setThreads(4);
    const size_t n = 10007; // prime: exercises a ragged last chunk
    std::vector<std::atomic<uint32_t>> hits(n);
    parallelFor(0, n, 64, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i)
            hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1u) << "index " << i;
}

TEST_F(ParallelTest, ChunkBoundariesFollowGrain)
{
    ThreadPool::instance().setThreads(2);
    std::vector<std::pair<size_t, size_t>> chunks(4, {0, 0});
    parallelFor(3, 13, 3, [&](size_t b, size_t e) {
        chunks[(b - 3) / 3] = {b, e};
    });
    // Static chunking: [3,6) [6,9) [9,12) [12,13) regardless of pool.
    EXPECT_EQ(chunks[0], (std::pair<size_t, size_t>{3, 6}));
    EXPECT_EQ(chunks[1], (std::pair<size_t, size_t>{6, 9}));
    EXPECT_EQ(chunks[2], (std::pair<size_t, size_t>{9, 12}));
    EXPECT_EQ(chunks[3], (std::pair<size_t, size_t>{12, 13}));
}

TEST_F(ParallelTest, EmptyAndDegenerateRanges)
{
    std::atomic<int> calls{0};
    parallelFor(5, 5, 4, [&](size_t, size_t) { ++calls; });
    parallelFor(7, 3, 4, [&](size_t, size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
    // grain 0 is promoted to 1 rather than dividing by zero.
    parallelFor(0, 3, 0, [&](size_t b, size_t e) {
        EXPECT_EQ(e, b + 1);
        ++calls;
    });
    EXPECT_EQ(calls.load(), 3);
}

TEST_F(ParallelTest, PoolIsReusedAcrossManyJobs)
{
    ThreadPool &pool = ThreadPool::instance();
    pool.setThreads(4);
    EXPECT_EQ(pool.threads(), 4u);
    const size_t n = 4096;
    std::vector<uint64_t> out(n);
    for (int round = 0; round < 200; ++round) {
        parallelFor(0, n, 32, [&](size_t b, size_t e) {
            for (size_t i = b; i < e; ++i)
                out[i] = i + static_cast<size_t>(round);
        });
        ASSERT_EQ(out[n - 1], n - 1 + static_cast<size_t>(round));
    }
    uint64_t sum = std::accumulate(out.begin(), out.end(), uint64_t{0});
    EXPECT_EQ(sum, (n - 1) * n / 2 + 199 * n);
    // Same singleton throughout.
    EXPECT_EQ(&pool, &ThreadPool::instance());
}

TEST_F(ParallelTest, ThreadCountIsAdjustableBothWays)
{
    ThreadPool &pool = ThreadPool::instance();
    for (uint32_t t : {1u, 8u, 2u, 1u, 4u}) {
        pool.setThreads(t);
        EXPECT_EQ(pool.threads(), t);
        std::atomic<uint64_t> sum{0};
        parallelFor(0, 1000, 10, [&](size_t b, size_t e) {
            uint64_t local = 0;
            for (size_t i = b; i < e; ++i)
                local += i;
            sum.fetch_add(local, std::memory_order_relaxed);
        });
        EXPECT_EQ(sum.load(), 999u * 1000u / 2);
    }
}

TEST_F(ParallelTest, ExceptionPropagatesAndPoolSurvives)
{
    ThreadPool::instance().setThreads(4);
    EXPECT_THROW(
        parallelFor(0, 1000, 1,
                    [&](size_t b, size_t) {
                        if (b == 500)
                            throw std::runtime_error("boom");
                    }),
        std::runtime_error);

    // The pool must still be fully usable after the throw.
    std::atomic<uint32_t> count{0};
    parallelFor(0, 256, 8, [&](size_t b, size_t e) {
        count.fetch_add(static_cast<uint32_t>(e - b));
    });
    EXPECT_EQ(count.load(), 256u);
}

TEST_F(ParallelTest, ExceptionPropagatesFromSerialFallback)
{
    ThreadPool::instance().setThreads(1);
    EXPECT_THROW(parallelFor(0, 10, 2,
                             [&](size_t, size_t) {
                                 throw std::logic_error("serial boom");
                             }),
                 std::logic_error);
}

TEST_F(ParallelTest, NestedParallelForRunsSerially)
{
    ThreadPool::instance().setThreads(4);
    std::atomic<uint64_t> total{0};
    parallelFor(0, 16, 1, [&](size_t, size_t) {
        EXPECT_TRUE(ThreadPool::inParallelRegion());
        // Nested region: must complete (serially) without deadlock.
        uint64_t local = 0;
        parallelFor(0, 100, 7, [&](size_t b, size_t e) {
            for (size_t i = b; i < e; ++i)
                local += i;
        });
        total.fetch_add(local, std::memory_order_relaxed);
    });
    EXPECT_EQ(total.load(), 16u * (99u * 100u / 2));
    EXPECT_FALSE(ThreadPool::inParallelRegion());
}

// ---- Determinism across thread counts -------------------------------

template <typename Fn>
void
expectBitIdenticalAcrossThreads(Fn &&make)
{
    ThreadPool &pool = ThreadPool::instance();
    pool.setThreads(1);
    auto golden = make();
    for (uint32_t t : {2u, 8u}) {
        pool.setThreads(t);
        auto got = make();
        EXPECT_TRUE(got.equals(golden)) << "threads=" << t;
    }
}

TEST_F(ParallelTest, MatmulBitExactAcrossThreadCounts)
{
    Rng rng(31);
    Matrix a(173, 91), b(91, 67);
    a.fillXavier(rng);
    b.fillXavier(rng);
    expectBitIdenticalAcrossThreads([&] { return matmul(a, b); });
}

TEST_F(ParallelTest, MatmulNTBitExactAcrossThreadCounts)
{
    Rng rng(32);
    Matrix a(200, 77), b(150, 77);
    a.fillXavier(rng);
    b.fillXavier(rng);
    expectBitIdenticalAcrossThreads([&] { return matmulNT(a, b); });
}

TEST_F(ParallelTest, SimilarityBitExactAcrossThreadCounts)
{
    Rng rng(33);
    Matrix x(160, 64), y(120, 64);
    x.fillXavier(rng);
    y.fillXavier(rng);
    // Zero-norm rows exercise the cosine guard.
    for (size_t j = 0; j < x.cols(); ++j)
        x.at(7, j) = 0.0f;
    for (SimilarityKind kind :
         {SimilarityKind::DotProduct, SimilarityKind::Cosine,
          SimilarityKind::Euclidean}) {
        expectBitIdenticalAcrossThreads(
            [&] { return similarityMatrix(x, y, kind); });
    }
}

TEST_F(ParallelTest, EmfTagsBitExactAcrossThreadCounts)
{
    Rng rng(34);
    Matrix features(777, 48);
    features.fillXavier(rng);

    ThreadPool &pool = ThreadPool::instance();
    pool.setThreads(1);
    std::vector<uint32_t> golden = computeEmfTags(features, 5);
    for (uint32_t t : {2u, 8u}) {
        pool.setThreads(t);
        EXPECT_EQ(computeEmfTags(features, 5), golden)
            << "threads=" << t;
    }

    // And the full filter keeps Algorithm 1's scan-order semantics.
    pool.setThreads(8);
    EmfResult par = emfFilter(features, 5);
    pool.setThreads(1);
    EmfResult ser = emfFilter(features, 5);
    EXPECT_EQ(par.recordSet, ser.recordSet);
    EXPECT_EQ(par.tagMap, ser.tagMap);
    EXPECT_EQ(par.uniqueOf, ser.uniqueOf);
}

TEST_F(ParallelTest, GrainForRowsIsShapeOnly)
{
    // Never zero, never exceeds the row count, and scales down as the
    // per-row cost grows.
    EXPECT_EQ(grainForRows(0, 100), 1u);
    EXPECT_EQ(grainForRows(10, 1), 10u);
    EXPECT_GE(grainForRows(1000, 1 << 20), 1u);
    EXPECT_LE(grainForRows(1000, 64), 1000u);
    EXPECT_GT(grainForRows(100000, 8), grainForRows(100000, 4096));
}

} // namespace
} // namespace cegma
