/**
 * @file
 * The elastic dedup runtime's contract: EMF-skipped similarity,
 * cross-pair memoization, and the full functional inference path are
 * *bit-identical* to the dense reference at every thread count, and a
 * 32-bit tag collision can never alias two distinct rows thanks to the
 * memcmp confirm in `confirmDedup`.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "accel/runner.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "emf/emf.hh"
#include "gmn/memo.hh"
#include "gmn/model.hh"
#include "gmn/similarity.hh"
#include "graph/generators.hh"

namespace cegma {
namespace {

const SimilarityKind kAllKinds[] = {
    SimilarityKind::DotProduct,
    SimilarityKind::Cosine,
    SimilarityKind::Euclidean,
};

const uint32_t kThreadCounts[] = {1, 2, 8};

class DedupExecTest : public ::testing::Test
{
  protected:
    void TearDown() override { ThreadPool::instance().setThreads(1); }
};

/** A WL-duplicate-heavy pair (thread graphs, paper Fig. 18 regime). */
GraphPair
dupHeavyPair(uint64_t seed, NodeId n = 48)
{
    Rng rng(seed);
    Graph g = threadGraph(n, n + n / 6, rng);
    return makePairFromOriginal(g, true, rng);
}

/**
 * Realistic duplicate-heavy feature matrices: the per-layer node
 * features a GCN model actually produces on a thread graph (WL-class
 * duplicates are bitwise duplicates there).
 */
std::pair<Matrix, Matrix>
dupHeavyFeatures(uint64_t seed)
{
    GraphPair pair = dupHeavyPair(seed);
    auto model = makeModel(ModelId::GraphSim, 99);
    GmnModel::Detail detail = model->forwardDetailed(pair);
    return {detail.xLayers[1], detail.yLayers[1]};
}

TEST_F(DedupExecTest, FeaturesActuallyHaveDuplicates)
{
    auto [x, y] = dupHeavyFeatures(3);
    EmfResult ex = emfFilter(x);
    EmfResult ey = emfFilter(y);
    EXPECT_GT(ex.numDuplicates(), 0u);
    EXPECT_GT(ey.numDuplicates(), 0u);
}

TEST_F(DedupExecTest, SimilarityBitExactAllKindsAllThreads)
{
    auto [x, y] = dupHeavyFeatures(7);
    for (SimilarityKind kind : kAllKinds) {
        ThreadPool::instance().setThreads(1);
        Matrix dense = similarityMatrix(x, y, kind);
        for (uint32_t threads : kThreadCounts) {
            ThreadPool::instance().setThreads(threads);
            Matrix dedup = similarityMatrixDedup(x, y, kind);
            EXPECT_TRUE(dense.equals(dedup))
                << similarityName(kind) << " @ " << threads << " threads";
            // The dense kernel itself must also hold its determinism
            // contract, or the comparison above proves nothing.
            Matrix dense_t = similarityMatrix(x, y, kind);
            EXPECT_TRUE(dense.equals(dense_t))
                << similarityName(kind) << " dense @ " << threads;
        }
    }
}

TEST_F(DedupExecTest, DedupMapMatchesEmfOnCleanTags)
{
    auto [x, y] = dupHeavyFeatures(11);
    EmfResult emf = emfFilter(x);
    DedupMap map = confirmDedup(x, emf);
    // No collisions in practice: the confirmed map preserves EMF's
    // unique count, and every row aliases a bitwise-equal unique row.
    EXPECT_EQ(map.numUnique(), emf.numUnique());
    for (size_t v = 0; v < x.rows(); ++v) {
        uint32_t rep = map.uniqueRows[map.repOf[v]];
        EXPECT_TRUE(x.rowsEqual(v, rep)) << "row " << v;
    }
}

TEST_F(DedupExecTest, ForcedTagCollisionFallsBackToMemcmp)
{
    // Four rows: 0 and 3 distinct, 1 == 2 but != 0. Hand-poison the
    // EMF outcome to claim rows 1..3 all duplicate row 0 — the tag
    // collision case a 32-bit hash cannot rule out.
    Matrix x(4, 3,
             {1.0f, 2.0f, 3.0f,   //
              4.0f, 5.0f, 6.0f,   //
              4.0f, 5.0f, 6.0f,   //
              7.0f, 8.0f, 9.0f});
    EmfResult poisoned;
    poisoned.recordSet = {{0, 42}};
    poisoned.tagMap = {{1, 0}, {2, 0}, {3, 0}};
    poisoned.isUnique = {1, 0, 0, 0};
    poisoned.uniqueOf = {0, 0, 0, 0};

    DedupMap map = confirmDedup(x, poisoned);
    // The confirm must promote row 1 (bits differ from row 0), alias
    // row 2 to the *promoted* row 1, and promote row 3 again.
    ASSERT_EQ(map.numUnique(), 3u);
    EXPECT_EQ(map.uniqueRows[0], 0u);
    EXPECT_EQ(map.uniqueRows[1], 1u);
    EXPECT_EQ(map.uniqueRows[2], 3u);
    EXPECT_EQ(map.repOf[0], 0u);
    EXPECT_EQ(map.repOf[1], 1u);
    EXPECT_EQ(map.repOf[2], 1u);
    EXPECT_EQ(map.repOf[3], 2u);

    // And the dedup similarity built through the poisoned-then-
    // confirmed map still equals dense, for every kind and both sides.
    Matrix y(2, 3, {0.5f, -1.0f, 2.0f, 3.0f, 0.0f, -2.0f});
    DedupMap dy = confirmDedup(y, emfFilter(y));
    for (SimilarityKind kind : kAllKinds) {
        Matrix dense = similarityMatrix(x, y, kind);
        Matrix dedup = similarityMatrixDedup(x, y, kind, map, dy);
        EXPECT_TRUE(dense.equals(dedup)) << similarityName(kind);
        Matrix dense_t = similarityMatrix(y, x, kind);
        Matrix dedup_t = similarityMatrixDedup(y, x, kind, dy, map);
        EXPECT_TRUE(dense_t.equals(dedup_t)) << similarityName(kind);
    }
}

TEST_F(DedupExecTest, ScatterRowsReplicatesRepresentatives)
{
    Matrix block(2, 2, {1.0f, 2.0f, 3.0f, 4.0f});
    DedupMap map;
    map.uniqueRows = {0, 2};
    map.repOf = {0, 0, 1, 1, 0};
    Matrix out = scatterRows(block, map);
    ASSERT_EQ(out.rows(), 5u);
    for (size_t i = 0; i < out.rows(); ++i) {
        EXPECT_FLOAT_EQ(out.at(i, 0), block.at(map.repOf[i], 0));
        EXPECT_FLOAT_EQ(out.at(i, 1), block.at(map.repOf[i], 1));
    }
}

TEST_F(DedupExecTest, DedupFlopsConsistentWithUniquePairs)
{
    for (SimilarityKind kind : kAllKinds) {
        uint64_t dense = similarityFlops(100, 80, 64, kind);
        uint64_t dedup = similarityFlopsDedup(100, 80, 10, 8, 64, kind);
        EXPECT_EQ(dedup, similarityFlops(10, 8, 64, kind));
        EXPECT_LT(dedup, dense);
        // No duplicates -> dedup accounting degenerates to dense.
        EXPECT_EQ(similarityFlopsDedup(100, 80, 100, 80, 64, kind),
                  dense);
    }
}

/** All-knob bitwise identity of the full forward pass, per model. */
void
expectForwardBitIdentical(ModelId id, const GraphPair &pair)
{
    auto dense_model = makeModel(id, 1234);
    GmnModel::Detail dense = dense_model->forwardDetailed(pair);

    MemoCache memo;
    InferenceOptions knobs[3];
    knobs[0].dedupMatching = true;
    knobs[1].memo = &memo;
    knobs[2].dedupMatching = true;
    knobs[2].memo = &memo;

    for (const InferenceOptions &opts : knobs) {
        auto model = makeModel(id, 1234);
        model->setInferenceOptions(opts);
        GmnModel::Detail got = model->forwardDetailed(pair);

        ASSERT_EQ(got.xLayers.size(), dense.xLayers.size());
        ASSERT_EQ(got.yLayers.size(), dense.yLayers.size());
        ASSERT_EQ(got.simLayers.size(), dense.simLayers.size());
        for (size_t l = 0; l < dense.xLayers.size(); ++l) {
            EXPECT_TRUE(got.xLayers[l].equals(dense.xLayers[l]))
                << "xLayers[" << l << "]";
            EXPECT_TRUE(got.yLayers[l].equals(dense.yLayers[l]))
                << "yLayers[" << l << "]";
        }
        for (size_t l = 0; l < dense.simLayers.size(); ++l) {
            EXPECT_TRUE(got.simLayers[l].equals(dense.simLayers[l]))
                << "simLayers[" << l << "]";
        }
        EXPECT_EQ(got.score, dense.score);
    }
}

TEST_F(DedupExecTest, GmnLiForwardBitIdenticalAllThreads)
{
    GraphPair pair = dupHeavyPair(21);
    for (uint32_t threads : kThreadCounts) {
        ThreadPool::instance().setThreads(threads);
        expectForwardBitIdentical(ModelId::GmnLi, pair);
    }
}

TEST_F(DedupExecTest, GraphSimForwardBitIdenticalAllThreads)
{
    GraphPair pair = dupHeavyPair(22);
    for (uint32_t threads : kThreadCounts) {
        ThreadPool::instance().setThreads(threads);
        expectForwardBitIdentical(ModelId::GraphSim, pair);
    }
}

TEST_F(DedupExecTest, SimGnnForwardBitIdenticalAllThreads)
{
    GraphPair pair = dupHeavyPair(23);
    for (uint32_t threads : kThreadCounts) {
        ThreadPool::instance().setThreads(threads);
        expectForwardBitIdentical(ModelId::SimGnn, pair);
    }
}

TEST_F(DedupExecTest, MemoCacheHitsAcrossPairs)
{
    // Two pairs sharing the same target graph: the second pair's
    // target-side WL and embedding must come out of the cache.
    Rng rng(31);
    Graph g = threadGraph(40, 48, rng);
    GraphPair a = makePairFromOriginal(g, true, rng);
    GraphPair b = makePairFromOriginal(g, false, rng);

    MemoCache memo;
    auto model = makeModel(ModelId::SimGnn, 1234);
    InferenceOptions opts;
    opts.memo = &memo;
    model->setInferenceOptions(opts);
    model->score(a);
    size_t misses_after_a = memo.misses();
    EXPECT_GT(misses_after_a, 0u);
    EXPECT_EQ(memo.hits(), 0u);
    model->score(b);
    // Pair b's target side (WL + embedding) hits; only its query side
    // misses.
    EXPECT_GT(memo.hits(), 0u);
}

TEST_F(DedupExecTest, RunFunctionalKnobsBitIdentical)
{
    Dataset ds = makeCloneSearchDataset(DatasetId::RD_B, 3, 3, 5);
    ASSERT_EQ(ds.pairs.size(), 9u);
    for (ModelId id : allModels()) {
        FunctionalOptions dense;
        FunctionalResult ref = runFunctional(id, ds, dense);

        FunctionalOptions dedup;
        dedup.dedup = true;
        FunctionalOptions both;
        both.dedup = true;
        both.memo = true;
        for (const FunctionalOptions &opts : {dedup, both}) {
            FunctionalResult got = runFunctional(id, ds, opts);
            ASSERT_EQ(got.scores.size(), ref.scores.size());
            for (size_t i = 0; i < ref.scores.size(); ++i)
                EXPECT_EQ(got.scores[i], ref.scores[i])
                    << modelConfig(id).name << " pair " << i;
            if (opts.memo) {
                // Every graph recurs across the 3x3 pair grid.
                EXPECT_GT(got.memoHits, 0u) << modelConfig(id).name;
            }
        }
    }
}

TEST_F(DedupExecTest, ParallelTraceBuildMatchesSerial)
{
    Dataset ds = makeCloneSearchDataset(DatasetId::RD_B, 2, 4, 9);
    for (uint32_t threads : kThreadCounts) {
        ThreadPool::instance().setThreads(threads);
        std::vector<PairTrace> par =
            buildTraces(ModelId::GmnLi, ds);
        ASSERT_EQ(par.size(), ds.pairs.size());
        for (size_t i = 0; i < par.size(); ++i) {
            PairTrace serial = buildTrace(ModelId::GmnLi, ds.pairs[i]);
            EXPECT_EQ(par[i].totalFlops(), serial.totalFlops());
            EXPECT_EQ(par[i].uniqueMatchPairs(),
                      serial.uniqueMatchPairs());
            EXPECT_EQ(par[i].dedupMatchFlopsTotal(),
                      serial.dedupMatchFlopsTotal());
        }
    }
}

} // namespace
} // namespace cegma
