/**
 * @file
 * Integration tests for the accelerator and platform models: the
 * paper's qualitative results must hold (CEGMA faster and lighter on
 * DRAM than the baselines; ablations in between; software platforms
 * slowest).
 */

#include <gtest/gtest.h>

#include "accel/accelerator.hh"
#include "accel/platform.hh"
#include "accel/runner.hh"
#include "common/rng.hh"
#include "graph/generators.hh"

namespace cegma {
namespace {

std::vector<PairTrace>
threadTraces(ModelId model, const Dataset &ds, uint32_t count)
{
    return buildTraces(model, ds, count);
}

class AcceleratorFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dataset_ = makeDataset(DatasetId::RD_B, 7, 6);
    }

    Dataset dataset_;
};

TEST_F(AcceleratorFixture, CegmaBeatsBaselinesOnCyclesAndDram)
{
    for (ModelId model : allModels()) {
        auto traces = threadTraces(model, dataset_, 6);
        SimResult awb = runPlatform(PlatformId::AwbGcn, traces);
        SimResult hygcn = runPlatform(PlatformId::HyGcn, traces);
        SimResult cegma = runPlatform(PlatformId::Cegma, traces);
        EXPECT_LT(cegma.cycles, awb.cycles)
            << modelConfig(model).name;
        EXPECT_LT(cegma.cycles, hygcn.cycles)
            << modelConfig(model).name;
        EXPECT_LT(cegma.dramBytes(), awb.dramBytes())
            << modelConfig(model).name;
        EXPECT_LT(cegma.dramBytes(), hygcn.dramBytes())
            << modelConfig(model).name;
    }
}

TEST_F(AcceleratorFixture, AblationsLieBetweenBaselineAndFull)
{
    auto traces = threadTraces(ModelId::GmnLi, dataset_, 6);
    SimResult awb = runPlatform(PlatformId::AwbGcn, traces);
    SimResult emf = runPlatform(PlatformId::CegmaEmf, traces);
    SimResult cgc = runPlatform(PlatformId::CegmaCgc, traces);
    SimResult full = runPlatform(PlatformId::Cegma, traces);
    EXPECT_LT(emf.cycles, awb.cycles);
    EXPECT_LT(cgc.cycles, awb.cycles);
    EXPECT_LE(full.cycles, emf.cycles);
    EXPECT_LE(full.cycles, cgc.cycles);
    EXPECT_LT(emf.dramBytes(), awb.dramBytes());
    EXPECT_LT(cgc.dramBytes(), awb.dramBytes());
}

TEST_F(AcceleratorFixture, SoftwarePlatformsAreSlowest)
{
    auto traces = threadTraces(ModelId::GraphSim, dataset_, 6);
    SimResult cpu = runPlatform(PlatformId::PygCpu, traces);
    SimResult gpu = runPlatform(PlatformId::PygGpu, traces);
    SimResult awb = runPlatform(PlatformId::AwbGcn, traces);
    SimResult cegma = runPlatform(PlatformId::Cegma, traces);
    EXPECT_GT(cpu.cycles, gpu.cycles);
    EXPECT_GT(gpu.cycles, awb.cycles);
    EXPECT_GT(gpu.cycles, cegma.cycles);
}

TEST_F(AcceleratorFixture, EmfCountersRecorded)
{
    auto traces = threadTraces(ModelId::GraphSim, dataset_, 2);
    SimResult cegma = runPlatform(PlatformId::Cegma, traces);
    EXPECT_GT(cegma.extra.get("emf_hash_cycles"), 0u);
    EXPECT_GT(cegma.extra.get("emf_filter_cycles"), 0u);
    SimResult awb = runPlatform(PlatformId::AwbGcn, traces);
    EXPECT_EQ(awb.extra.get("emf_hash_cycles"), 0u);
}

TEST_F(AcceleratorFixture, BatchingAmortizesWeightTraffic)
{
    auto traces = threadTraces(ModelId::GraphSim, dataset_, 6);
    AcceleratorModel awb(awbGcnConfig());
    SimResult batched = awb.simulateAll(traces, 32);
    SimResult unbatched = awb.simulateAll(traces, 1);
    EXPECT_LT(batched.dramReadBytes, unbatched.dramReadBytes);
    EXPECT_EQ(batched.pairsSimulated, unbatched.pairsSimulated);
}

TEST_F(AcceleratorFixture, GmnLiGainsMostDramReduction)
{
    // Fig. 17/22 shape: the type (b) model (GMN-Li) sees the largest
    // relative DRAM reduction because CEGMA keeps S on-chip.
    auto li = threadTraces(ModelId::GmnLi, dataset_, 6);
    auto sg = threadTraces(ModelId::SimGnn, dataset_, 6);
    double li_ratio =
        static_cast<double>(runPlatform(PlatformId::Cegma, li)
                                .dramBytes()) /
        runPlatform(PlatformId::AwbGcn, li).dramBytes();
    double sg_ratio =
        static_cast<double>(runPlatform(PlatformId::Cegma, sg)
                                .dramBytes()) /
        runPlatform(PlatformId::AwbGcn, sg).dramBytes();
    EXPECT_LT(li_ratio, sg_ratio);
}

TEST(LayerWeights, BytesByModel)
{
    EXPECT_EQ(layerWeightBytes(ModelId::GraphSim, 64), 64u * 64u * 4u);
    EXPECT_EQ(layerWeightBytes(ModelId::SimGnn, 64), 64u * 64u * 4u);
    EXPECT_EQ(layerWeightBytes(ModelId::GmnLi, 64), 7u * 64u * 64u * 4u);
}

TEST(EmfKeepMask, FirstOccurrencePerClass)
{
    auto mask = emfKeepMask({3, 3, 5, 3, 5, 9});
    std::vector<bool> expected{true, false, true, false, false, true};
    EXPECT_EQ(mask, expected);
}

TEST(Platform, OpSecondsRoofline)
{
    SoftwarePlatform gpu = pygGpuPlatform();
    // Tiny op: dominated by launch/dispatch overhead.
    EXPECT_NEAR(gpu.opSeconds(1e3, 1e3), gpu.kernelOverhead, 3e-5);
    // Huge op: compute at the utilization ceiling (PyG never reaches
    // machine peak on GMN workloads — see the utilCap doc).
    double huge = gpu.opSeconds(1e12, 1e9);
    double ceiling_time = 1e12 / (gpu.peakFlops * gpu.utilCap);
    EXPECT_GT(huge, ceiling_time * 0.9);
    EXPECT_LT(huge, ceiling_time * 1.5);
    // Utilization grows with op size: per-FLOP cost must not rise.
    EXPECT_LT(gpu.opSeconds(1e9, 1e6) / 1e9,
              gpu.opSeconds(1e7, 1e4) / 1e7);
}

TEST(Platform, LargerGraphsQuadraticallySlower)
{
    Rng rng(31);
    Graph small_g = randomGraphLi(100, rng);
    Graph big_g = randomGraphLi(1000, rng);
    GraphPair ps = makePairFromOriginal(small_g, true, rng);
    GraphPair pb = makePairFromOriginal(big_g, true, rng);
    std::vector<PairTrace> ts{buildTrace(ModelId::GmnLi, ps)};
    std::vector<PairTrace> tb{buildTrace(ModelId::GmnLi, pb)};
    SoftwarePlatform gpu = pygGpuPlatform();
    double s = gpu.runAll(ts).cycles;
    double b = gpu.runAll(tb).cycles;
    // 10x nodes -> much more than 10x matching cost once past the
    // overhead floor.
    EXPECT_GT(b, s);
}

} // namespace
} // namespace cegma
