/**
 * @file
 * Tests for the simulator substrate: configurations, cycle-cost
 * helpers, energy model, and result accounting.
 */

#include <gtest/gtest.h>

#include "sim/config.hh"
#include "sim/energy.hh"
#include "sim/mac_array.hh"
#include "sim/result.hh"

namespace cegma {
namespace {

TEST(Config, TableThreePresets)
{
    AccelConfig cegma = cegmaConfig();
    EXPECT_EQ(cegma.name, "CEGMA");
    EXPECT_EQ(cegma.denseMacs, 128u * 32u);
    EXPECT_EQ(cegma.inputBufferBytes, 128u * KiB);
    EXPECT_TRUE(cegma.hasEmf);
    EXPECT_TRUE(cegma.hasCgc);
    EXPECT_EQ(cegma.emfComparators, 1024u);
    EXPECT_DOUBLE_EQ(cegma.dramBytesPerCycle, 256.0);

    AccelConfig hygcn = hygcnConfig();
    EXPECT_FALSE(hygcn.hasEmf);
    EXPECT_FALSE(hygcn.hasCgc);
    EXPECT_EQ(hygcn.denseMacs, 32u * 128u);

    AccelConfig awb = awbGcnConfig();
    EXPECT_EQ(awb.denseMacs, 4096u);
    EXPECT_FALSE(awb.hasCgc);

    AccelConfig emf_only = cegmaEmfOnlyConfig();
    EXPECT_TRUE(emf_only.hasEmf);
    EXPECT_FALSE(emf_only.hasCgc);

    AccelConfig cgc_only = cegmaCgcOnlyConfig();
    EXPECT_FALSE(cgc_only.hasEmf);
    EXPECT_TRUE(cgc_only.hasCgc);
}

TEST(Config, InputBufferNodes)
{
    AccelConfig config = cegmaConfig();
    // 128 KiB / (64 floats * 4 B) = 512 nodes.
    EXPECT_EQ(config.inputBufferNodes(64), 512u);
    EXPECT_EQ(config.inputBufferNodes(128), 256u);
    // Degenerate width still yields a usable window.
    EXPECT_GE(config.inputBufferNodes(1 << 30), 2u);
}

TEST(MacArray, CycleCosts)
{
    AccelConfig config = awbGcnConfig();
    // 4096 MACs at 0.8 utilization.
    EXPECT_NEAR(denseCycles(config, 4096 * 80), 100.0, 1e-6);
    EXPECT_GT(aggCycles(config, 1000), 0.0);
    // Dense work is cheaper per MAC than sparse aggregation.
    EXPECT_LT(denseCycles(config, 1000000), aggCycles(config, 1000000));
}

TEST(MacArray, DramCycles)
{
    AccelConfig config = cegmaConfig();
    EXPECT_DOUBLE_EQ(dramCycles(config, 0), 0.0);
    // 2560 bytes at 256 B/cycle = 10 cycles + fixed overhead.
    EXPECT_NEAR(dramCycles(config, 2560),
                10.0 + config.dramStepOverheadCycles, 1e-9);
}

TEST(Energy, Composition)
{
    EnergyModel model;
    double none = model.totalNj(0, 0, 0, 0.0);
    EXPECT_DOUBLE_EQ(none, 0.0);
    double dram_only = model.totalNj(1000, 0, 0, 0.0);
    EXPECT_NEAR(dram_only, 1000 * model.dramPjPerByte * 1e-3, 1e-9);
    // DRAM dominates SRAM per byte by at least an order of magnitude.
    EXPECT_GT(model.dramPjPerByte, 10 * model.sramPjPerByte);
}

TEST(Result, LatencyAndThroughput)
{
    SimResult result;
    result.cycles = 2e6; // 2 ms at 1 GHz
    result.pairsSimulated = 4;
    EXPECT_DOUBLE_EQ(result.seconds(1e9), 2e-3);
    EXPECT_DOUBLE_EQ(result.msPerPair(1e9), 0.5);
    EXPECT_DOUBLE_EQ(result.throughput(1e9), 2000.0);
}

TEST(Result, MergeAccumulates)
{
    SimResult a, b;
    a.cycles = 100;
    a.dramReadBytes = 10;
    a.macOps = 5;
    a.pairsSimulated = 1;
    a.extra.inc("x", 2);
    b.cycles = 50;
    b.dramWriteBytes = 20;
    b.pairsSimulated = 2;
    b.extra.inc("x", 3);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.cycles, 150.0);
    EXPECT_EQ(a.dramBytes(), 30u);
    EXPECT_EQ(a.pairsSimulated, 3u);
    EXPECT_EQ(a.extra.get("x"), 5u);
}

TEST(Result, EnergyUsesAllComponents)
{
    EnergyModel model;
    SimResult result;
    result.cycles = 1000;
    result.dramReadBytes = 500;
    result.dramWriteBytes = 500;
    result.sramBytes = 2000;
    result.macOps = 10000;
    double expected = (1000 * model.dramPjPerByte +
                       2000 * model.sramPjPerByte +
                       10000 * model.macPj +
                       1000 * model.leakagePjPerCycle) * 1e-3;
    EXPECT_NEAR(result.energyNj(model), expected, 1e-9);
}

} // namespace
} // namespace cegma
