/**
 * @file
 * Tests for the AOE unit: Algorithm 2 semantics and the hardware
 * cycle estimate.
 */

#include <gtest/gtest.h>

#include "accel/aoe_unit.hh"

namespace cegma {
namespace {

TEST(AoeUnit, KeepsSideWithMoreOutliers)
{
    // Target has two nodes at the minimum remaining degree (0), query
    // only one: keep the target stationary.
    AoeDecision d = evaluateAoe({0, 0, 5}, {0, 3, 4});
    EXPECT_TRUE(d.keepTarget);
    EXPECT_EQ(d.threshold, 0u);
    EXPECT_EQ(d.outliersTarget, 2u);
    EXPECT_EQ(d.outliersQuery, 1u);
}

TEST(AoeUnit, QueryWinsWithMoreOutliers)
{
    AoeDecision d = evaluateAoe({2, 3}, {1, 1, 1});
    EXPECT_FALSE(d.keepTarget);
    EXPECT_EQ(d.threshold, 1u);
    EXPECT_EQ(d.outliersQuery, 3u);
    EXPECT_EQ(d.outliersTarget, 0u);
}

TEST(AoeUnit, ThresholdResetClearsCounters)
{
    // Algorithm 2 lines 3-8: a new minimum resets both counters.
    // Target nodes at 5 (two of them), then a query node at 1.
    AoeDecision d = evaluateAoe({5, 5}, {1});
    EXPECT_EQ(d.threshold, 1u);
    EXPECT_EQ(d.outliersTarget, 0u);
    EXPECT_EQ(d.outliersQuery, 1u);
    EXPECT_FALSE(d.keepTarget);
}

TEST(AoeUnit, TieKeepsTarget)
{
    AoeDecision d = evaluateAoe({1}, {1});
    EXPECT_TRUE(d.keepTarget);
}

TEST(AoeUnit, EmptySidesAreSafe)
{
    AoeDecision d = evaluateAoe({}, {});
    EXPECT_TRUE(d.keepTarget);
    EXPECT_EQ(d.threshold, 0u);
    EXPECT_GE(d.cycles, 1u);
}

TEST(AoeUnit, CyclesScaleWithWindowSize)
{
    std::vector<uint32_t> small(16, 1), large(512, 1);
    uint64_t c_small = evaluateAoe(small, small).cycles;
    uint64_t c_large = evaluateAoe(large, large).cycles;
    EXPECT_GT(c_large, c_small);
    // Even a 1024-node window decides within a few hundred cycles —
    // negligible against the matching sweep it steers.
    EXPECT_LT(c_large, 10000u);
}

TEST(AoeUnit, MoreCountersAreFaster)
{
    std::vector<uint32_t> window(256, 2);
    AoeUnitConfig few{8, 8, 8};
    AoeUnitConfig many{64, 8, 64};
    EXPECT_GT(evaluateAoe(window, window, few).cycles,
              evaluateAoe(window, window, many).cycles);
}

} // namespace
} // namespace cegma
