/**
 * @file
 * Tests for the analysis passes: the exact reuse-distance profiler
 * (validated against a naive reference), FLOP breakdowns, and
 * redundancy statistics.
 */

#include <gtest/gtest.h>

#include <set>

#include "accel/window.hh"
#include "analysis/flops.hh"
#include "analysis/redundancy.hh"
#include "analysis/reuse.hh"
#include "common/rng.hh"
#include "graph/generators.hh"
#include "graph/wl_refine.hh"

namespace cegma {
namespace {

/** O(N^2) reference reuse-distance profiler. */
IntDistribution
naiveReuse(const std::vector<uint32_t> &trace, uint64_t *cold)
{
    IntDistribution out;
    uint64_t cold_count = 0;
    for (size_t i = 0; i < trace.size(); ++i) {
        // Find previous access.
        size_t prev = SIZE_MAX;
        for (size_t j = i; j > 0; --j) {
            if (trace[j - 1] == trace[i]) {
                prev = j - 1;
                break;
            }
        }
        if (prev == SIZE_MAX) {
            ++cold_count;
            continue;
        }
        std::set<uint32_t> between(trace.begin() + prev + 1,
                                   trace.begin() + i);
        between.erase(trace[i]);
        out.add(between.size());
    }
    if (cold)
        *cold = cold_count;
    return out;
}

TEST(ReuseProfiler, MatchesNaiveOnRandomTraces)
{
    Rng rng(41);
    for (int trial = 0; trial < 5; ++trial) {
        std::vector<uint32_t> trace(200);
        for (auto &t : trace)
            t = static_cast<uint32_t>(rng.nextBounded(30));
        uint64_t cold_fast = 0, cold_naive = 0;
        IntDistribution fast = profileReuseDistances(trace, &cold_fast);
        IntDistribution slow = naiveReuse(trace, &cold_naive);
        EXPECT_EQ(cold_fast, cold_naive);
        ASSERT_EQ(fast.total(), slow.total());
        EXPECT_EQ(fast.counts(), slow.counts()) << "trial " << trial;
    }
}

TEST(ReuseProfiler, HandComputed)
{
    // Trace: a b a c a -> distances: a@2:{b}=1, a@4:{c}=1 ... plus
    // nothing for b, c (cold).
    std::vector<uint32_t> trace{0, 1, 0, 2, 0};
    uint64_t cold = 0;
    IntDistribution d = profileReuseDistances(trace, &cold);
    EXPECT_EQ(cold, 3u);
    EXPECT_EQ(d.total(), 2u);
    EXPECT_EQ(d.counts().at(1), 2u);
}

TEST(ReuseProfiler, RepeatedAccessHasZeroDistance)
{
    std::vector<uint32_t> trace{5, 5, 5};
    IntDistribution d = profileReuseDistances(trace);
    EXPECT_EQ(d.total(), 2u);
    EXPECT_EQ(d.counts().at(0), 2u);
}

TEST(ReuseProfiler, BufferHitFraction)
{
    IntDistribution d;
    d.addWeighted(1, 50);
    d.addWeighted(100, 50);
    EXPECT_DOUBLE_EQ(bufferHitFraction(d, 10), 0.5);
    EXPECT_DOUBLE_EQ(bufferHitFraction(d, 1000), 1.0);
    EXPECT_DOUBLE_EQ(bufferHitFraction(d, 1), 0.0);
}

TEST(ReuseProfiler, CegmaShortensDistances)
{
    // The Fig. 4 vs Fig. 20 claim: CEGMA (coordinated window over the
    // EMF-filtered unique nodes) makes node reuses land at short
    // distances, while the baseline's matching-stage reloads span the
    // whole pair.
    Rng rng(43);
    Graph t = threadGraph(150, 180, rng);
    Graph q = threadGraph(140, 170, rng);
    WlColoring wl_t = wlRefine(t, 1);
    WlColoring wl_q = wlRefine(q, 1);
    std::vector<bool> keep_t(t.numNodes()), keep_q(q.numNodes());
    std::vector<bool> seen_t(wl_t.numClasses[1], false);
    for (NodeId v = 0; v < t.numNodes(); ++v) {
        keep_t[v] = !seen_t[wl_t.colors[1][v]];
        seen_t[wl_t.colors[1][v]] = true;
    }
    std::vector<bool> seen_q(wl_q.numClasses[1], false);
    for (NodeId v = 0; v < q.numNodes(); ++v) {
        keep_q[v] = !seen_q[wl_q.colors[1][v]];
        seen_q[wl_q.colors[1][v]] = true;
    }

    WindowWork work;
    work.target = &t;
    work.query = &q;
    work.capNodes = 32;
    work.hasMatching = true;

    auto sep = scheduleLayer(SchedulerKind::SeparatePhase, work, true);
    work.matchTarget = &keep_t;
    work.matchQuery = &keep_q;
    auto cegma = scheduleLayer(SchedulerKind::Coordinated, work, true);
    IntDistribution d_sep = profileReuseDistances(sep.accessTrace);
    IntDistribution d_cegma = profileReuseDistances(cegma.accessTrace);
    // Fraction of reuses within a 2^6-node window.
    EXPECT_GT(bufferHitFraction(d_cegma, 64),
              bufferHitFraction(d_sep, 64));
}

TEST(FlopBreakdown, SharesSumToOne)
{
    Dataset ds = makeDataset(DatasetId::GITHUB, 7, 8);
    FlopBreakdown bd = figure3Breakdown(ds);
    EXPECT_NEAR(bd.aggregateShare() + bd.combineShare() +
                    bd.matchingShare(),
                1.0, 1e-9);
    EXPECT_GT(bd.total(), 0.0);
}

TEST(FlopBreakdown, MatchingShareGrowsWithGraphSize)
{
    Dataset small_ds = makeDataset(DatasetId::AIDS, 7, 16);
    Dataset large_ds = makeDataset(DatasetId::RD_5K, 7, 8);
    double small_share = figure3Breakdown(small_ds).matchingShare();
    double large_share = figure3Breakdown(large_ds).matchingShare();
    EXPECT_GT(large_share, small_share);
    // Large REDDIT-scale graphs: matching dominates (Fig. 3's 99%).
    EXPECT_GT(large_share, 0.7);
}

TEST(FlopBreakdown, MergeAccumulates)
{
    FlopBreakdown a{1, 2, 3}, b{10, 20, 30};
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.aggregate, 11.0);
    EXPECT_DOUBLE_EQ(a.total(), 66.0);
}

TEST(Redundancy, MatchesTraceSums)
{
    Dataset ds = makeDataset(DatasetId::RD_B, 7, 4);
    std::vector<PairTrace> traces;
    for (const auto &pair : ds.pairs)
        traces.push_back(buildTrace(ModelId::GraphSim, pair));
    RedundancyStats stats = redundancyOf(traces);
    uint64_t total = 0, unique = 0;
    for (const auto &trace : traces) {
        total += trace.totalMatchPairs();
        unique += trace.uniqueMatchPairs();
    }
    EXPECT_EQ(stats.totalMatches, total);
    EXPECT_EQ(stats.uniqueMatches, unique);
    EXPECT_DOUBLE_EQ(stats.remainingUniqueFraction(),
                     static_cast<double>(unique) / total);
}

TEST(Redundancy, ThreadGraphsHeavilyRedundant)
{
    // Fig. 7's claim: REDDIT-like data shows >90% redundant matching.
    Dataset ds = makeDataset(DatasetId::RD_5K, 7, 6);
    std::vector<PairTrace> traces;
    for (const auto &pair : ds.pairs)
        traces.push_back(buildTrace(ModelId::GraphSim, pair));
    RedundancyStats stats = redundancyOf(traces);
    EXPECT_GT(stats.redundantFraction(), 0.5);
    EXPECT_GT(stats.redundantToUniqueRatio(), 1.0);
}

} // namespace
} // namespace cegma
