/**
 * @file
 * Unit tests for the common substrate: RNG, statistics, tables.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/units.hh"

namespace cegma {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next64() == b.next64());
    EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        uint64_t v = rng.nextBounded(17);
        EXPECT_LT(v, 17u);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng rng(11);
    double sum = 0.0, sum_sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double g = rng.nextGaussian();
        sum += g;
        sum_sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, SampleDistinctProducesDistinct)
{
    Rng rng(5);
    for (uint32_t k : {0u, 1u, 5u, 50u, 100u}) {
        auto s = rng.sampleDistinct(100, k);
        std::set<uint32_t> unique(s.begin(), s.end());
        EXPECT_EQ(unique.size(), k);
        for (uint32_t v : s)
            EXPECT_LT(v, 100u);
    }
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(9);
    std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
    auto orig = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(RunningStat, Basics)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    s.add(1.0);
    s.add(3.0);
    s.add(2.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(RunningStat, Merge)
{
    RunningStat a, b;
    a.add(1.0);
    a.add(2.0);
    b.add(10.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.max(), 10.0);
    RunningStat empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 3u);
}

TEST(IntDistribution, FractionBelow)
{
    IntDistribution d;
    d.add(1);
    d.add(2);
    d.add(4);
    d.add(100);
    EXPECT_DOUBLE_EQ(d.fractionBelow(1), 0.0);
    EXPECT_DOUBLE_EQ(d.fractionBelow(2), 0.25);
    EXPECT_DOUBLE_EQ(d.fractionBelow(5), 0.75);
    EXPECT_DOUBLE_EQ(d.fractionBelow(1000), 1.0);
    EXPECT_EQ(d.maxValue(), 100u);
    EXPECT_EQ(d.total(), 4u);
}

TEST(IntDistribution, Pow2Cdf)
{
    IntDistribution d;
    for (uint64_t v = 0; v < 16; ++v)
        d.add(v);
    EXPECT_DOUBLE_EQ(d.cdfAtPow2(4), 1.0);
    EXPECT_DOUBLE_EQ(d.cdfAtPow2(3), 0.5);
}

TEST(IntDistribution, MergeAndWeights)
{
    IntDistribution a, b;
    a.addWeighted(3, 5);
    b.addWeighted(3, 5);
    b.addWeighted(7, 10);
    a.merge(b);
    EXPECT_EQ(a.total(), 20u);
    EXPECT_DOUBLE_EQ(a.fractionBelow(4), 0.5);
}

TEST(IntDistribution, ValueAtQuantile)
{
    IntDistribution d;
    EXPECT_EQ(d.valueAtQuantile(0.5), 0u); // empty

    for (uint64_t v = 1; v <= 100; ++v)
        d.add(v);
    EXPECT_EQ(d.valueAtQuantile(0.0), 1u);
    EXPECT_EQ(d.valueAtQuantile(0.01), 1u);
    EXPECT_EQ(d.valueAtQuantile(0.5), 50u);
    EXPECT_EQ(d.valueAtQuantile(0.95), 95u);
    EXPECT_EQ(d.valueAtQuantile(0.99), 99u);
    EXPECT_EQ(d.valueAtQuantile(1.0), 100u);
    EXPECT_EQ(d.valueAtQuantile(2.0), 100u);  // clamped
    EXPECT_EQ(d.valueAtQuantile(-1.0), 1u);   // clamped
}

TEST(IntDistribution, ValueAtQuantileWeighted)
{
    IntDistribution d;
    d.addWeighted(10, 9);
    d.addWeighted(1000, 1);
    EXPECT_EQ(d.valueAtQuantile(0.5), 10u);
    EXPECT_EQ(d.valueAtQuantile(0.9), 10u);
    EXPECT_EQ(d.valueAtQuantile(0.91), 1000u);

    IntDistribution single;
    single.add(42);
    EXPECT_EQ(single.valueAtQuantile(0.5), 42u);
    EXPECT_EQ(single.valueAtQuantile(0.99), 42u);
}

TEST(StatSet, IncrementAndMerge)
{
    StatSet s;
    s.inc("cycles", 100);
    s.inc("cycles", 50);
    s.set("bytes", 7);
    EXPECT_EQ(s.get("cycles"), 150u);
    EXPECT_EQ(s.get("bytes"), 7u);
    EXPECT_EQ(s.get("missing"), 0u);

    StatSet t;
    t.inc("cycles", 1);
    t.inc("other", 2);
    s.merge(t);
    EXPECT_EQ(s.get("cycles"), 151u);
    EXPECT_EQ(s.get("other"), 2u);
}

TEST(TextTable, AlignsAndCounts)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22222"});
    EXPECT_EQ(t.numRows(), 2u);
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22222"), std::string::npos);

    std::ostringstream csv;
    t.printCsv(csv);
    EXPECT_NE(csv.str().find("b,22222"), std::string::npos);
}

TEST(TextTable, Formatters)
{
    EXPECT_EQ(TextTable::fmt(1.234, 2), "1.23");
    EXPECT_EQ(TextTable::fmtX(2.5), "2.5x");
    EXPECT_EQ(TextTable::fmtPct(0.934), "93.4%");
    EXPECT_EQ(TextTable::fmtBytes(2048), "2.00 KiB");
    EXPECT_EQ(TextTable::fmtCount(1500), "1.50K");
}

TEST(Units, CycleConversions)
{
    EXPECT_DOUBLE_EQ(cyclesToSeconds(1e9, GHz), 1.0);
    EXPECT_DOUBLE_EQ(cyclesToMs(2e6, GHz), 2.0);
}

} // namespace
} // namespace cegma
