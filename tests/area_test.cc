/**
 * @file
 * Tests for the Table III area model.
 */

#include <gtest/gtest.h>

#include "sim/area.hh"

namespace cegma {
namespace {

TEST(Area, CegmaMatchesTableThree)
{
    AreaBreakdown area = estimateArea(cegmaConfig());
    // Paper: 6.3 mm^2 total at 14 nm.
    EXPECT_NEAR(area.total(), 6.3, 0.15);
    // Distribution rows (paper: PE 53.58%+27.78%, EMF 0.18%+6.66%,
    // CGC 0.01%+11.79%).
    EXPECT_NEAR(area.peLogicShare(), 0.5358, 0.01);
    EXPECT_NEAR(area.peBufferShare(), 0.2778, 0.01);
    EXPECT_NEAR(area.emfLogicShare(), 0.0018, 0.001);
    EXPECT_NEAR(area.emfBufferShare(), 0.0666, 0.005);
    EXPECT_NEAR(area.cgcLogicShare(), 0.0001, 0.001);
    EXPECT_NEAR(area.cgcBufferShare(), 0.1179, 0.005);
}

TEST(Area, FeaturesAddArea)
{
    AreaBreakdown base = estimateArea(cegmaCgcOnlyConfig());
    AreaBreakdown full = estimateArea(cegmaConfig());
    EXPECT_GT(full.total(), base.total());
    EXPECT_DOUBLE_EQ(base.emfLogic, 0.0);
    EXPECT_DOUBLE_EQ(base.emfBuffer, 0.0);
    AreaBreakdown emf_only = estimateArea(cegmaEmfOnlyConfig());
    EXPECT_DOUBLE_EQ(emf_only.cgcLogic, 0.0);
}

TEST(Area, ScalesWithResources)
{
    AccelConfig wide = cegmaConfig();
    wide.denseMacs *= 2;
    EXPECT_GT(estimateArea(wide).peLogic,
              estimateArea(cegmaConfig()).peLogic);

    AccelConfig big_buf = cegmaConfig();
    big_buf.inputBufferBytes *= 4;
    EXPECT_GT(estimateArea(big_buf).peBuffer,
              estimateArea(cegmaConfig()).peBuffer);
}

TEST(Area, EmfOverheadIsSmall)
{
    // The paper's point: the EMF costs <7% of the die.
    AreaBreakdown area = estimateArea(cegmaConfig());
    EXPECT_LT(area.emfLogicShare() + area.emfBufferShare(), 0.08);
}

} // namespace
} // namespace cegma
