/**
 * @file
 * Cross-module integration sweeps: simulator invariants checked for
 * every model x dataset combination (parameterized), plus end-to-end
 * determinism of the full pipeline.
 */

#include <gtest/gtest.h>

#include "accel/runner.hh"
#include "analysis/redundancy.hh"
#include "common/units.hh"
#include "sim/energy.hh"

namespace cegma {
namespace {

using Combo = std::tuple<ModelId, DatasetId>;

class ComboFixture : public ::testing::TestWithParam<Combo>
{
  public:
    static std::string
    name(const ::testing::TestParamInfo<Combo> &info)
    {
        std::string n = modelConfig(std::get<0>(info.param)).name + "_" +
                        datasetSpec(std::get<1>(info.param)).name;
        for (auto &ch : n) {
            if (ch == '-')
                ch = '_';
        }
        return n;
    }

  protected:
    void
    SetUp() override
    {
        auto [mid, did] = GetParam();
        dataset_ = makeDataset(did, 7, 6);
        traces_ = buildTraces(mid, dataset_, 0);
    }

    Dataset dataset_;
    std::vector<PairTrace> traces_;
};

TEST_P(ComboFixture, CegmaDominatesBaselines)
{
    SimResult hygcn = runPlatform(PlatformId::HyGcn, traces_);
    SimResult awb = runPlatform(PlatformId::AwbGcn, traces_);
    SimResult cegma = runPlatform(PlatformId::Cegma, traces_);
    EXPECT_LT(cegma.cycles, awb.cycles);
    EXPECT_LT(cegma.cycles, hygcn.cycles);
    EXPECT_LE(cegma.dramBytes(), awb.dramBytes());
    EXPECT_LE(cegma.dramBytes(), hygcn.dramBytes());
    EXPECT_LE(cegma.macOps, awb.macOps);
}

TEST_P(ComboFixture, AblationsBracketFullCegma)
{
    SimResult emf = runPlatform(PlatformId::CegmaEmf, traces_);
    SimResult cgc = runPlatform(PlatformId::CegmaCgc, traces_);
    SimResult full = runPlatform(PlatformId::Cegma, traces_);
    // On tiny graphs the exposed EMF pipeline latency can exceed the
    // few hundred cycles the matching cut saves, so allow a small
    // inversion against the CGC-only ablation (the paper likewise
    // reports near-1x EMF gains on AIDS).
    EXPECT_LE(full.cycles, emf.cycles * 1.0001);
    EXPECT_LE(full.cycles, cgc.cycles * 1.02);
    EXPECT_LE(full.dramBytes(), emf.dramBytes());
    EXPECT_LE(full.dramBytes(), cgc.dramBytes());
}

TEST_P(ComboFixture, EnergyTracksWorkNotJustTime)
{
    EnergyModel energy;
    SimResult awb = runPlatform(PlatformId::AwbGcn, traces_);
    SimResult cegma = runPlatform(PlatformId::Cegma, traces_);
    EXPECT_LT(cegma.energyNj(energy), awb.energyNj(energy));
    EXPECT_GT(cegma.energyNj(energy), 0.0);
}

TEST_P(ComboFixture, ThroughputLatencyConsistency)
{
    SimResult cegma = runPlatform(PlatformId::Cegma, traces_);
    double ms = cegma.msPerPair(GHz);
    double tput = cegma.throughput(GHz);
    ASSERT_GT(ms, 0.0);
    EXPECT_NEAR(tput * ms / 1e3, 1.0, 1e-9);
    EXPECT_EQ(cegma.pairsSimulated, traces_.size());
}

TEST_P(ComboFixture, TraceBuildIsDeterministic)
{
    auto [mid, did] = GetParam();
    auto again = buildTraces(mid, dataset_, 0);
    ASSERT_EQ(again.size(), traces_.size());
    for (size_t i = 0; i < traces_.size(); ++i) {
        EXPECT_EQ(traces_[i].totalFlops(), again[i].totalFlops());
        EXPECT_EQ(traces_[i].uniqueMatchPairs(),
                  again[i].uniqueMatchPairs());
    }
}

TEST_P(ComboFixture, SimulationIsDeterministic)
{
    SimResult a = runPlatform(PlatformId::Cegma, traces_);
    SimResult b = runPlatform(PlatformId::Cegma, traces_);
    EXPECT_DOUBLE_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.dramBytes(), b.dramBytes());
}

TEST_P(ComboFixture, UniqueFractionSane)
{
    RedundancyStats stats = redundancyOf(traces_);
    EXPECT_GT(stats.uniqueMatches, 0u);
    EXPECT_LE(stats.uniqueMatches, stats.totalMatches);
    // EMF speedup on the matching never manufactures work.
    EXPECT_GE(stats.redundantFraction(), 0.0);
    EXPECT_LT(stats.remainingUniqueFraction(), 1.0 + 1e-12);
}

std::vector<Combo>
allCombos()
{
    std::vector<Combo> combos;
    for (ModelId mid : allModels()) {
        for (DatasetId did :
             {DatasetId::AIDS, DatasetId::GITHUB, DatasetId::RD_B}) {
            combos.push_back({mid, did});
        }
    }
    return combos;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ComboFixture,
                         ::testing::ValuesIn(allCombos()),
                         ComboFixture::name);

TEST(Integration, BatchSizeOnlyAffectsWeightTraffic)
{
    Dataset ds = makeDataset(DatasetId::GITHUB, 7, 8);
    auto traces = buildTraces(ModelId::GraphSim, ds, 0);
    AcceleratorModel cegma(cegmaConfig());
    SimResult b8 = cegma.simulateAll(traces, 8);
    SimResult b1 = cegma.simulateAll(traces, 1);
    EXPECT_LE(b8.dramReadBytes, b1.dramReadBytes);
    EXPECT_EQ(b8.dramWriteBytes, b1.dramWriteBytes);
    EXPECT_EQ(b8.macOps, b1.macOps);
}

TEST(Integration, SoftwareOrderingHoldsEverywhere)
{
    for (DatasetId did : {DatasetId::AIDS, DatasetId::RD_5K}) {
        Dataset ds = makeDataset(did, 7, 6);
        for (ModelId mid : allModels()) {
            auto traces = buildTraces(mid, ds, 0);
            double cpu = runPlatform(PlatformId::PygCpu, traces).cycles;
            double gpu = runPlatform(PlatformId::PygGpu, traces).cycles;
            double cegma = runPlatform(PlatformId::Cegma, traces).cycles;
            EXPECT_GT(cpu, gpu) << datasetSpec(did).name;
            EXPECT_GT(gpu, cegma) << datasetSpec(did).name;
        }
    }
}

} // namespace
} // namespace cegma
