/**
 * @file
 * Tests for the WL refinement duplicate-class oracle.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "graph/dataset.hh"
#include "graph/generators.hh"
#include "graph/wl_refine.hh"

namespace cegma {
namespace {

TEST(WlRefine, StarLeavesShareOneClass)
{
    // A star: hub 0 with 5 leaves. All leaves are WL-equivalent at
    // every depth.
    Graph g = Graph::fromEdges(6,
                               {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}});
    WlColoring wl = wlRefine(g, 3);
    ASSERT_EQ(wl.numLevels(), 4u);
    // Level 0: unlabeled -> one class.
    EXPECT_EQ(wl.numClasses[0], 1u);
    // Levels >= 1: hub vs leaf -> exactly two classes.
    for (size_t l = 1; l < wl.numLevels(); ++l) {
        EXPECT_EQ(wl.numClasses[l], 2u) << "level " << l;
        for (NodeId leaf = 2; leaf <= 5; ++leaf)
            EXPECT_EQ(wl.colors[l][1], wl.colors[l][leaf]);
        EXPECT_NE(wl.colors[l][0], wl.colors[l][1]);
    }
}

TEST(WlRefine, PaperFigure5Example)
{
    // The paper's Fig. 5 structure: node1 and node2 both hang off
    // node3; they share all l-hop neighborhoods, so they stay
    // duplicates at every level.
    Graph g = Graph::fromEdges(4, {{0, 2}, {1, 2}, {2, 3}});
    WlColoring wl = wlRefine(g, 2);
    for (size_t l = 0; l < wl.numLevels(); ++l)
        EXPECT_EQ(wl.colors[l][0], wl.colors[l][1]) << "level " << l;
    // node3 differs from the leaves at depth >= 1.
    EXPECT_NE(wl.colors[1][0], wl.colors[1][2]);
}

TEST(WlRefine, LabelsSplitClassesAtLevelZero)
{
    Graph g = Graph::fromEdges(3, {{0, 1}, {1, 2}}, {7, 8, 7});
    WlColoring wl = wlRefine(g, 1);
    EXPECT_EQ(wl.numClasses[0], 2u);
    EXPECT_EQ(wl.colors[0][0], wl.colors[0][2]);
    EXPECT_NE(wl.colors[0][0], wl.colors[0][1]);
}

TEST(WlRefine, PathEndpointsSymmetric)
{
    // Path 0-1-2-3-4: by symmetry {0,4} and {1,3} pair up forever.
    Graph g = Graph::fromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
    WlColoring wl = wlRefine(g, 3);
    for (size_t l = 0; l < wl.numLevels(); ++l) {
        EXPECT_EQ(wl.colors[l][0], wl.colors[l][4]);
        EXPECT_EQ(wl.colors[l][1], wl.colors[l][3]);
    }
    // Depth 2 distinguishes the middle from the inner pair.
    EXPECT_NE(wl.colors[2][1], wl.colors[2][2]);
    EXPECT_NE(wl.colors[2][0], wl.colors[2][1]);
}

TEST(WlRefine, RefinementIsMonotone)
{
    // Classes can only split, never merge: same color at level l+1
    // implies same color at level l.
    Rng rng(3);
    Graph g = threadGraph(200, 230, rng);
    WlColoring wl = wlRefine(g, 5);
    for (size_t l = 0; l + 1 < wl.numLevels(); ++l) {
        EXPECT_LE(wl.numClasses[l], wl.numClasses[l + 1]);
        for (NodeId u = 0; u < g.numNodes(); ++u) {
            for (NodeId v = u + 1; v < std::min<NodeId>(g.numNodes(),
                                                        u + 20); ++v) {
                if (wl.colors[l + 1][u] == wl.colors[l + 1][v]) {
                    EXPECT_EQ(wl.colors[l][u], wl.colors[l][v]);
                }
            }
        }
    }
}

TEST(WlRefine, SignaturesCanonicalAcrossGraphs)
{
    // Two separately built stars: leaf signatures must match across
    // graphs (shared-query dedup relies on this).
    Graph g1 = Graph::fromEdges(4, {{0, 1}, {0, 2}, {0, 3}});
    Graph g2 = Graph::fromEdges(5, {{4, 0}, {4, 1}, {4, 2}, {4, 3}});
    WlColoring wl1 = wlRefine(g1, 1);
    WlColoring wl2 = wlRefine(g2, 1);
    // Degree-1 leaves attached to a hub of differing degree: level-0
    // signatures equal, level-1 signatures differ (hub degree differs
    // within the 1-hop unfolding? No: a leaf's 1-hop view is just
    // "me + one plain neighbor", identical in both stars).
    EXPECT_EQ(wl1.signatures[0][1], wl2.signatures[0][1]);
    EXPECT_EQ(wl1.signatures[1][1], wl2.signatures[1][1]);
    // But hub signatures differ at level 1 (3 vs 4 neighbors).
    EXPECT_NE(wl1.signatures[1][0], wl2.signatures[1][4]);
}

TEST(WlRefine, DuplicateFractionHighOnThreadGraphs)
{
    Rng rng(5);
    Graph g = threadGraph(430, 498, rng);
    WlColoring wl = wlRefine(g, 3);
    // REDDIT-like graphs should keep most nodes duplicated even at
    // depth 3 (the paper reports >90% redundant matching).
    EXPECT_GT(wl.duplicateFraction(3), 0.5);
}

TEST(WlRefine, DuplicateFractionLowOnDenseRandom)
{
    Rng rng(6);
    Graph g = erdosRenyiGnm(100, 800, rng);
    WlColoring wl = wlRefine(g, 3);
    // Dense random graphs individualize almost completely.
    EXPECT_LT(wl.duplicateFraction(3), 0.2);
}

TEST(WlRefine, CompleteGraphNeverSplits)
{
    Rng rng(1);
    Graph g = erdosRenyiGnm(8, 1000, rng); // clamps to K8
    WlColoring wl = wlRefine(g, 4);
    for (size_t l = 0; l < wl.numLevels(); ++l)
        EXPECT_EQ(wl.numClasses[l], 1u);
}

} // namespace
} // namespace cegma
