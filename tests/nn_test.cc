/**
 * @file
 * Tests for the neural-network layers, with emphasis on the
 * duplicate-preservation property: WL-equivalent nodes must receive
 * bitwise-identical outputs from every layer type.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "graph/generators.hh"
#include "graph/wl_refine.hh"
#include "nn/cnn.hh"
#include "nn/gcn.hh"
#include "nn/linear.hh"
#include "nn/mgnn.hh"
#include "nn/ntn.hh"

namespace cegma {
namespace {

/** Expand WL colors at one level to per-node features (one per class). */
Matrix
classFeatures(const WlColoring &wl, size_t level, size_t dim, Rng &rng)
{
    uint32_t num_classes = wl.numClasses[level];
    Matrix class_rows(num_classes, dim);
    class_rows.fillXavier(rng);
    Matrix out(wl.colors[level].size(), dim);
    for (size_t v = 0; v < wl.colors[level].size(); ++v) {
        for (size_t j = 0; j < dim; ++j)
            out.at(v, j) = class_rows.at(wl.colors[level][v], j);
    }
    return out;
}

TEST(Linear, ShapesAndDeterminism)
{
    Rng rng1(1), rng2(1);
    Linear a(8, 4, rng1), b(8, 4, rng2);
    Matrix x(3, 8);
    Rng xr(2);
    x.fillXavier(xr);
    Matrix ya = a.forward(x);
    Matrix yb = b.forward(x);
    EXPECT_EQ(ya.rows(), 3u);
    EXPECT_EQ(ya.cols(), 4u);
    EXPECT_TRUE(ya.equals(yb));
}

TEST(Linear, FlopsFormula)
{
    Rng rng(1);
    Linear a(8, 4, rng);
    EXPECT_EQ(a.flops(10), 10ull * (2 * 8 * 4 + 4));
}

TEST(Mlp, LayerChain)
{
    Rng rng(3);
    Mlp mlp({16, 8, 4, 2}, rng, Activation::Sigmoid);
    EXPECT_EQ(mlp.inDim(), 16u);
    EXPECT_EQ(mlp.outDim(), 2u);
    Matrix x(5, 16);
    x.fillXavier(rng);
    Matrix y = mlp.forward(x);
    EXPECT_EQ(y.rows(), 5u);
    EXPECT_EQ(y.cols(), 2u);
    // Sigmoid output in (0, 1).
    for (size_t i = 0; i < y.size(); ++i) {
        EXPECT_GT(y.data()[i], 0.0f);
        EXPECT_LT(y.data()[i], 1.0f);
    }
}

TEST(AggregateMean, HandComputed)
{
    // Path 0-1-2; features 1, 10, 100.
    Graph g = Graph::fromEdges(3, {{0, 1}, {1, 2}});
    Matrix x(3, 1, {1.0f, 10.0f, 100.0f});
    Matrix agg = aggregateMean(g, x, {});
    EXPECT_FLOAT_EQ(agg.at(0, 0), (1.0f + 10.0f) / 2);
    EXPECT_FLOAT_EQ(agg.at(1, 0), (10.0f + 1.0f + 100.0f) / 3);
    EXPECT_FLOAT_EQ(agg.at(2, 0), (100.0f + 10.0f) / 2);
}

TEST(GcnLayer, DuplicatesStayBitwiseEqual)
{
    Rng rng(11);
    Graph g = threadGraph(120, 140, rng);
    const unsigned layers = 3;
    WlColoring wl = wlRefine(g, layers);

    Rng wrng(21);
    Matrix x = classFeatures(wl, 0, 16, wrng);
    GcnLayer l1(16, 16, wrng), l2(16, 16, wrng), l3(16, 16, wrng);
    const GcnLayer *gcn[] = {&l1, &l2, &l3};
    for (unsigned l = 0; l < layers; ++l) {
        x = gcn[l]->forward(g, x, wl.signatures[l]);
        // Every WL-equal pair at level l+1 has bitwise equal features.
        for (NodeId u = 0; u < g.numNodes(); ++u) {
            for (NodeId v = u + 1;
                 v < std::min<NodeId>(g.numNodes(), u + 25); ++v) {
                if (wl.colors[l + 1][u] == wl.colors[l + 1][v]) {
                    EXPECT_TRUE(x.rowsEqual(u, v))
                        << "layer " << l << " nodes " << u << "," << v;
                }
            }
        }
    }
}

TEST(MgnnLayer, DuplicatesStayBitwiseEqual)
{
    Rng rng(13);
    Graph g = threadGraph(80, 95, rng);
    WlColoring wl = wlRefine(g, 2);

    Rng wrng(23);
    Matrix x = classFeatures(wl, 0, 8, wrng);
    // Cross messages must themselves be class-consistent; emulate a
    // matching output by deriving them from the class features.
    Matrix cross = classFeatures(wl, 0, 8, wrng);
    MgnnLayer layer(8, 8, wrng);
    Matrix out = layer.forward(g, x, cross, wl.signatures[0]);
    for (NodeId u = 0; u < g.numNodes(); ++u) {
        for (NodeId v = u + 1; v < g.numNodes(); ++v) {
            if (wl.colors[1][u] == wl.colors[1][v] &&
                wl.colors[0][u] == wl.colors[0][v]) {
                EXPECT_TRUE(out.rowsEqual(u, v))
                    << "nodes " << u << "," << v;
            }
        }
    }
}

TEST(MgnnLayer, FlopAccountingPositive)
{
    Rng rng(14);
    Graph g = erdosRenyiGnm(20, 40, rng);
    MgnnLayer layer(16, 16, rng);
    EXPECT_GT(layer.edgeFlops(g), 0u);
    EXPECT_GT(layer.aggregateFlops(g), 0u);
    EXPECT_GT(layer.updateFlops(20), 0u);
    // Edge MLP cost scales with arcs.
    Graph g2 = erdosRenyiGnm(20, 80, rng);
    EXPECT_GT(layer.edgeFlops(g2), layer.edgeFlops(g));
}

TEST(Ntn, ShapesAndNonNegativity)
{
    Rng rng(15);
    Ntn ntn(32, 8, rng);
    Matrix h1(1, 32), h2(1, 32);
    h1.fillXavier(rng);
    h2.fillXavier(rng);
    Matrix out = ntn.forward(h1, h2);
    EXPECT_EQ(out.rows(), 1u);
    EXPECT_EQ(out.cols(), 8u);
    for (size_t k = 0; k < 8; ++k)
        EXPECT_GE(out.at(0, k), 0.0f); // ReLU output
    EXPECT_GT(ntn.flops(), 0u);
}

TEST(Ntn, SymmetricInputsGiveDeterministicOutput)
{
    Rng rng(16);
    Ntn ntn(16, 4, rng);
    Matrix h(1, 16);
    h.fillXavier(rng);
    Matrix a = ntn.forward(h, h);
    Matrix b = ntn.forward(h, h);
    EXPECT_TRUE(a.equals(b));
}

TEST(BilinearResize, IdentityAndConstant)
{
    Matrix src(2, 2, {1, 1, 1, 1});
    Matrix big = bilinearResize(src, 8, 8);
    for (size_t i = 0; i < big.size(); ++i)
        EXPECT_FLOAT_EQ(big.data()[i], 1.0f);

    Matrix same = bilinearResize(src, 2, 2);
    EXPECT_TRUE(same.approxEquals(src, 1e-6f));
}

TEST(BilinearResize, PreservesRange)
{
    Rng rng(17);
    Matrix src(5, 9);
    src.fillXavier(rng);
    Matrix dst = bilinearResize(src, 16, 16);
    float lo = src.data()[0], hi = src.data()[0];
    for (size_t i = 0; i < src.size(); ++i) {
        lo = std::min(lo, src.data()[i]);
        hi = std::max(hi, src.data()[i]);
    }
    for (size_t i = 0; i < dst.size(); ++i) {
        EXPECT_GE(dst.data()[i], lo - 1e-6f);
        EXPECT_LE(dst.data()[i], hi + 1e-6f);
    }
}

TEST(Conv3x3, OutputShapeAndRelu)
{
    Rng rng(18);
    Conv3x3 conv(2, 3, rng);
    Volume in;
    in.channels.emplace_back(4, 4);
    in.channels.emplace_back(4, 4);
    in.channels[0].fillXavier(rng);
    in.channels[1].fillXavier(rng);
    Volume out = conv.forward(in);
    EXPECT_EQ(out.numChannels(), 3u);
    EXPECT_EQ(out.height(), 4u);
    EXPECT_EQ(out.width(), 4u);
    for (const Matrix &ch : out.channels) {
        for (size_t i = 0; i < ch.size(); ++i)
            EXPECT_GE(ch.data()[i], 0.0f);
    }
}

TEST(MaxPool, HalvesAndTakesMax)
{
    Volume in;
    in.channels.emplace_back(2, 2, std::vector<float>{1, 2, 3, 4});
    Volume out = maxPool2x2(in);
    EXPECT_EQ(out.height(), 1u);
    EXPECT_EQ(out.width(), 1u);
    EXPECT_FLOAT_EQ(out.channels[0].at(0, 0), 4.0f);
}

TEST(CnnStack, EndToEnd)
{
    Rng rng(19);
    CnnStack cnn({1, 4, 8}, 8, rng);
    Matrix s(10, 13);
    s.fillXavier(rng);
    Matrix feat = cnn.forward(s);
    EXPECT_EQ(feat.rows(), 1u);
    EXPECT_EQ(feat.cols(), 8u);
    EXPECT_EQ(cnn.outDim(), 8u);
    EXPECT_GT(cnn.flops(), 0u);
    // Deterministic.
    EXPECT_TRUE(feat.equals(cnn.forward(s)));
}

} // namespace
} // namespace cegma
