/**
 * @file
 * The retrieval cascade's proof obligations:
 *   - WL tag sets are canonical, sorted-unique, and clone queries keep
 *     most of their base graph's tags;
 *   - the inverted tag index honors the overlap threshold, returns
 *     ascending candidate ids, and never prunes at threshold 0;
 *   - coarse vectors have the documented dimensions (pooled chain for
 *     partner-independent models, WL sketch for GMN-Li) and the
 *     shortlist kernel is a pure function of the vectors — same set on
 *     every call, id-ascending, with C=0 meaning "no cut";
 *   - a cascade `SearchService`'s verified scores are bit-identical to
 *     exhaustive mode's for every candidate the cascade touches, at
 *     multiple thread counts and batch sizes, and pruned candidates
 *     surface as NaN ("not scored"), never as fabricated scores;
 *   - the per-stage candidate counters flow through the metrics
 *     registry (exhaustive mode verifies everything; cascade prunes);
 *   - the recall gate: at the CI corpus size (see
 *     CEGMA_RETRIEVAL_CI_CANDIDATES), cascade recall@10 against the
 *     exhaustive oracle stays >= 0.99 (`RetrievalGate.*` is the
 *     scripts/ci.sh regression tier).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <future>
#include <vector>

#include "common/parallel.hh"
#include "gmn/model.hh"
#include "graph/dataset.hh"
#include "retrieval/coarse.hh"
#include "retrieval/retrieval.hh"
#include "retrieval/tag_index.hh"
#include "serve/service.hh"

namespace cegma {
namespace {

// ---- WL tag sets ----------------------------------------------------

TEST(WlTags, SortedUniqueAndStable)
{
    CloneSearchCorpus corpus =
        makeCloneSearchCorpus(DatasetId::AIDS, 1, 4);
    const Graph &g = corpus.candidates[0];
    std::vector<uint64_t> tags = wlTagSet(g, 2);
    ASSERT_FALSE(tags.empty());
    EXPECT_TRUE(std::is_sorted(tags.begin(), tags.end()));
    EXPECT_EQ(std::adjacent_find(tags.begin(), tags.end()), tags.end());
    EXPECT_EQ(wlTagSet(g, 2), tags); // pure function of the graph
}

TEST(WlTags, CloneKeepsMostTags)
{
    CloneSearchCorpus corpus =
        makeCloneSearchCorpus(DatasetId::AIDS, 8, 8);
    for (size_t q = 0; q < corpus.queries.size(); ++q) {
        std::vector<uint64_t> qt = wlTagSet(corpus.queries[q], 1);
        std::vector<uint64_t> ct = wlTagSet(corpus.candidates[q], 1);
        std::vector<uint64_t> common;
        std::set_intersection(qt.begin(), qt.end(), ct.begin(), ct.end(),
                              std::back_inserter(common));
        // A 1-edge substitution disturbs only the touched endpoints'
        // 1-hop neighborhoods; the clone keeps the majority of tags.
        EXPECT_GE(common.size() * 2, qt.size()) << "query " << q;
    }
}

// ---- TagIndex -------------------------------------------------------

TEST(TagIndex, ThresholdZeroKeepsEveryoneAscending)
{
    CloneSearchCorpus corpus =
        makeCloneSearchCorpus(DatasetId::AIDS, 1, 12);
    TagIndex index;
    index.build(corpus.candidates, 1);
    EXPECT_EQ(index.corpusSize(), 12u);
    EXPECT_GT(index.numTags(), 0u);
    EXPECT_GT(index.numPostings(), 0u);
    EXPECT_GT(index.bytes(), 0u);

    std::vector<uint32_t> all = index.survivors(corpus.queries[0], 0.0);
    ASSERT_EQ(all.size(), 12u);
    for (uint32_t c = 0; c < 12; ++c)
        EXPECT_EQ(all[c], c);
}

TEST(TagIndex, ThresholdPrunesMonotonically)
{
    CloneSearchCorpus corpus =
        makeCloneSearchCorpus(DatasetId::AIDS, 4, 32);
    TagIndex index;
    index.build(corpus.candidates, 1);
    for (size_t q = 0; q < corpus.queries.size(); ++q) {
        std::vector<uint32_t> loose =
            index.survivors(corpus.queries[q], 0.25);
        std::vector<uint32_t> tight =
            index.survivors(corpus.queries[q], 0.75);
        EXPECT_TRUE(std::is_sorted(loose.begin(), loose.end()));
        // A stricter threshold can only shrink the survivor set.
        EXPECT_TRUE(std::includes(loose.begin(), loose.end(),
                                  tight.begin(), tight.end()))
            << "query " << q;
        // The planted clone shares most tags, so it survives a loose
        // threshold.
        EXPECT_TRUE(std::binary_search(loose.begin(), loose.end(),
                                       static_cast<uint32_t>(q)))
            << "query " << q;
    }
}

TEST(TagIndex, SelfQuerySurvivesFullOverlap)
{
    CloneSearchCorpus corpus =
        makeCloneSearchCorpus(DatasetId::AIDS, 1, 8);
    TagIndex index;
    index.build(corpus.candidates, 2);
    for (uint32_t c = 0; c < 8; ++c) {
        std::vector<uint32_t> s =
            index.survivors(corpus.candidates[c], 1.0);
        EXPECT_TRUE(std::binary_search(s.begin(), s.end(), c))
            << "candidate " << c;
    }
}

TEST(TagIndex, EmptyCorpus)
{
    TagIndex index;
    index.build({}, 1);
    EXPECT_EQ(index.corpusSize(), 0u);
    EXPECT_EQ(index.numTags(), 0u);
    CloneSearchCorpus corpus =
        makeCloneSearchCorpus(DatasetId::AIDS, 1, 1);
    EXPECT_TRUE(index.survivors(corpus.queries[0], 0.0).empty());
}

// ---- Coarse vectors & shortlist -------------------------------------

TEST(Coarse, PooledChainDimensionsForPartnerIndependentModels)
{
    CloneSearchCorpus corpus =
        makeCloneSearchCorpus(DatasetId::AIDS, 1, 1);
    for (ModelId id : {ModelId::GraphSim, ModelId::SimGnn}) {
        std::unique_ptr<GmnModel> model = makeModel(id);
        const ModelConfig &mc = modelConfig(id);
        std::vector<float> v =
            coarseVector(corpus.candidates[0], *model, 1, 128);
        EXPECT_EQ(v.size(), (mc.numLayers + 1) * mc.nodeDim)
            << mc.name;
    }
}

TEST(Coarse, SketchFallbackForCrossFeedbackModel)
{
    CloneSearchCorpus corpus =
        makeCloneSearchCorpus(DatasetId::AIDS, 1, 1);
    std::unique_ptr<GmnModel> model = makeModel(ModelId::GmnLi);
    EXPECT_EQ(model->graphEmbedding(corpus.candidates[0]), nullptr);
    std::vector<float> v =
        coarseVector(corpus.candidates[0], *model, 1, 96);
    EXPECT_EQ(v.size(), 96u);
    // The sketch is content-keyed: same graph, same sketch.
    EXPECT_EQ(coarseVector(corpus.candidates[0], *model, 1, 96), v);
}

TEST(Coarse, ShortlistIsDeterministicAndBounded)
{
    CloneSearchCorpus corpus =
        makeCloneSearchCorpus(DatasetId::AIDS, 4, 24);
    std::unique_ptr<GmnModel> model = makeModel(ModelId::GraphSim);
    CoarseIndex index;
    index.build(corpus.candidates, *model, 1, 128);
    EXPECT_EQ(index.corpusSize(), 24u);

    std::vector<uint32_t> everyone(24);
    for (uint32_t c = 0; c < 24; ++c)
        everyone[c] = c;

    for (size_t q = 0; q < corpus.queries.size(); ++q) {
        std::vector<float> qv =
            coarseVector(corpus.queries[q], *model, 1, 128);
        std::vector<uint32_t> top = index.shortlist(qv, everyone, 6);
        ASSERT_EQ(top.size(), 6u);
        EXPECT_TRUE(std::is_sorted(top.begin(), top.end()));
        EXPECT_EQ(index.shortlist(qv, everyone, 6), top); // pure
        // C = 0 and C >= N both mean "no cut".
        EXPECT_EQ(index.shortlist(qv, everyone, 0), everyone);
        EXPECT_EQ(index.shortlist(qv, everyone, 24), everyone);
        // The clone's base graph is the nearest thing in chain space.
        EXPECT_TRUE(std::binary_search(top.begin(), top.end(),
                                       static_cast<uint32_t>(q)))
            << "query " << q;
    }
}

// ---- RetrievalIndex (stage 1 + stage 2 composed) --------------------

TEST(RetrievalIndex, ChainDistanceShortlistFindsPlantedClone)
{
    // GraphSim has no model-aware coarse head, so the index ranks by
    // pooled-chain distance — where a 1-edge clone is the nearest
    // corpus graph by construction.
    CloneSearchCorpus corpus =
        makeCloneSearchCorpus(DatasetId::AIDS, 6, 48);
    std::unique_ptr<GmnModel> model = makeModel(ModelId::GraphSim);
    EXPECT_EQ(model->coarseDim(), 0u);
    EXPECT_EQ(model->coarseScorer(corpus.queries[0]), nullptr);

    RetrievalConfig config;
    config.mode = RetrievalMode::Cascade;
    config.shortlist = 8;
    config.tagPrune = 0.25;
    RetrievalIndex index;
    index.build(corpus.candidates, *model, config);
    EXPECT_GT(index.bytes(), 0u);
    EXPECT_FALSE(index.coarse().modelAware());

    for (size_t q = 0; q < corpus.queries.size(); ++q) {
        RetrievalStages stages;
        std::vector<uint32_t> list =
            index.shortlist(corpus.queries[q], *model, &stages);
        EXPECT_LE(list.size(), 8u);
        EXPECT_EQ(stages.corpus, 48u);
        EXPECT_GE(stages.survivors, stages.shortlisted);
        EXPECT_EQ(stages.shortlisted, list.size());
        EXPECT_TRUE(std::binary_search(list.begin(), list.end(),
                                       static_cast<uint32_t>(q)))
            << "query " << q << " lost its planted clone";
    }
}

TEST(RetrievalIndex, ModelAwareShortlistTracksExactRanking)
{
    // SimGNN decomposes its head, so the index stores model
    // descriptors and ranks with the query-conditioned scorer — whose
    // whole point is agreeing with the *exact score* ranking, clone or
    // not.
    constexpr uint32_t kCandidates = 64;
    CloneSearchCorpus corpus =
        makeCloneSearchCorpus(DatasetId::AIDS, 4, kCandidates);
    std::unique_ptr<GmnModel> model = makeModel(ModelId::SimGnn);
    EXPECT_GT(model->coarseDim(), 0u);

    RetrievalConfig config;
    config.mode = RetrievalMode::Cascade;
    config.shortlist = 16;
    RetrievalIndex index;
    index.build(corpus.candidates, *model, config);
    EXPECT_TRUE(index.coarse().modelAware());
    EXPECT_EQ(index.coarse().dim(), model->coarseDim());

    for (size_t q = 0; q < corpus.queries.size(); ++q) {
        const Graph &query = corpus.queries[q];
        RetrievalStages stages;
        std::vector<uint32_t> list =
            index.shortlist(query, *model, &stages);
        ASSERT_EQ(list.size(), 16u);
        EXPECT_TRUE(std::is_sorted(list.begin(), list.end()));
        EXPECT_EQ(index.shortlist(query, *model), list); // pure

        // The shortlist must reach the exact-score maximum: on a
        // 64-graph corpus, a 16-deep model-aware shortlist containing
        // *a* top-scoring candidate (ties at the exact maximum all
        // count) is the minimum bar for "tracks the exact ranking".
        double best = -1.0;
        for (uint32_t c = 0; c < kCandidates; ++c)
            best = std::max(best,
                            model->score(GraphPairView(
                                corpus.candidates[c], query)));
        double best_in_list = -1.0;
        for (uint32_t c : list)
            best_in_list = std::max(
                best_in_list,
                model->score(GraphPairView(corpus.candidates[c], query)));
        EXPECT_EQ(best_in_list, best)
            << "query " << q << " shortlist missed every exact-best";
    }
}

// ---- Cascade SearchService ------------------------------------------

/** All per-candidate score vectors of `service`, query-major. */
std::vector<std::vector<double>>
serviceScores(SearchService &service, const std::vector<Graph> &queries)
{
    std::vector<std::future<QueryResult>> futures;
    futures.reserve(queries.size());
    for (const Graph &query : queries)
        futures.push_back(service.submit(query));
    std::vector<std::vector<double>> scores;
    scores.reserve(queries.size());
    for (auto &future : futures)
        scores.push_back(future.get().scores);
    return scores;
}

TEST(CascadeService, VerifiedScoresBitIdenticalToExhaustive)
{
    constexpr uint32_t kQueries = 6;
    constexpr uint32_t kCandidates = 40;
    CloneSearchCorpus corpus = makeCloneSearchCorpus(
        DatasetId::AIDS, kQueries, kCandidates);

    // The exhaustive oracle, once.
    ThreadPool::instance().setThreads(1);
    ServeConfig exhaustive;
    exhaustive.model = ModelId::SimGnn;
    exhaustive.flushMicros = 200;
    SearchService oracle(exhaustive, corpus.candidates);
    std::vector<std::vector<double>> reference =
        serviceScores(oracle, corpus.queries);
    oracle.shutdown();

    for (uint32_t threads : {1u, 2u, 8u}) {
        for (uint32_t batch : {1u, 4u}) {
            ThreadPool::instance().setThreads(threads);
            ServeConfig config = exhaustive;
            config.maxBatch = batch;
            config.retrieval.mode = RetrievalMode::Cascade;
            config.retrieval.shortlist = 10;
            config.retrieval.tagPrune = 0.25;
            SearchService service(config, corpus.candidates);
            std::vector<std::vector<double>> cascade =
                serviceScores(service, corpus.queries);
            service.shutdown();

            size_t verified = 0;
            for (uint32_t q = 0; q < kQueries; ++q) {
                ASSERT_EQ(cascade[q].size(), kCandidates);
                for (uint32_t c = 0; c < kCandidates; ++c) {
                    if (std::isnan(cascade[q][c]))
                        continue;
                    ++verified;
                    // Bit-identity: the cascade changes WHICH pairs
                    // are scored, never HOW.
                    EXPECT_EQ(cascade[q][c], reference[q][c])
                        << "threads=" << threads << " batch=" << batch
                        << " q=" << q << " c=" << c;
                }
            }
            EXPECT_GT(verified, 0u);
            EXPECT_LT(verified,
                      static_cast<size_t>(kQueries) * kCandidates)
                << "cascade pruned nothing";
        }
    }
    ThreadPool::instance().setThreads(0);
}

TEST(CascadeService, TopKRanksOnlyVerifiedCandidates)
{
    CloneSearchCorpus corpus =
        makeCloneSearchCorpus(DatasetId::AIDS, 3, 30);
    ServeConfig config;
    config.model = ModelId::SimGnn;
    config.flushMicros = 200;
    config.topK = 10;
    config.retrieval.mode = RetrievalMode::Cascade;
    config.retrieval.shortlist = 5;
    config.retrieval.tagPrune = 0.25;
    SearchService service(config, corpus.candidates);
    for (const Graph &query : corpus.queries) {
        QueryResult result = service.submit(query).get();
        // At most `shortlist` candidates were verified, so at most
        // that many hits exist — never NaN-backed ones.
        EXPECT_LE(result.topK.size(), 5u);
        ASSERT_FALSE(result.topK.empty());
        for (const SearchHit &hit : result.topK) {
            EXPECT_FALSE(std::isnan(hit.score));
            EXPECT_EQ(hit.score, result.scores[hit.candidate]);
        }
        for (size_t i = 0; i + 1 < result.topK.size(); ++i)
            EXPECT_GE(result.topK[i].score, result.topK[i + 1].score);
    }
    service.shutdown();
    MetricsSnapshot snap = service.metrics();
    EXPECT_EQ(snap.retrievalCandidates, 3u * 30u);
    EXPECT_LE(snap.retrievalVerified, 3u * 5u);
    EXPECT_GT(snap.retrievalPruneRatio, 0.0);
    EXPECT_GT(snap.retrievalFilterPruneRatio, 0.0);
}

TEST(CascadeService, ExhaustiveModeVerifiesEverything)
{
    CloneSearchCorpus corpus =
        makeCloneSearchCorpus(DatasetId::AIDS, 2, 5);
    ServeConfig config;
    config.model = ModelId::SimGnn;
    config.flushMicros = 200;
    SearchService service(config, corpus.candidates);
    for (const Graph &query : corpus.queries) {
        QueryResult result = service.submit(query).get();
        for (double s : result.scores)
            EXPECT_FALSE(std::isnan(s));
    }
    service.shutdown();
    MetricsSnapshot snap = service.metrics();
    EXPECT_EQ(snap.retrievalCandidates, 2u * 5u);
    EXPECT_EQ(snap.retrievalSurvivors, 2u * 5u);
    EXPECT_EQ(snap.retrievalVerified, 2u * 5u);
    EXPECT_EQ(snap.retrievalPruneRatio, 0.0);
}

TEST(CascadeService, StageCountersReachRegistryExports)
{
    CloneSearchCorpus corpus =
        makeCloneSearchCorpus(DatasetId::AIDS, 2, 20);
    ServeConfig config;
    config.model = ModelId::SimGnn;
    config.flushMicros = 200;
    config.retrieval.mode = RetrievalMode::Cascade;
    config.retrieval.shortlist = 4;
    SearchService service(config, corpus.candidates);
    for (const Graph &query : corpus.queries)
        service.submit(query).get();
    service.shutdown();

    // Both exposition paths carry the stage counters: the snapshot
    // JSON (cegma_serve --json) and the registry (--prom).
    std::string json = service.metrics().toJson();
    EXPECT_NE(json.find("\"retrieval_candidates\": 40"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("retrieval_prune_ratio"), std::string::npos);
    std::string prom = service.registry().snapshot().toPrometheus();
    EXPECT_NE(prom.find("serve_retrieval_candidates"),
              std::string::npos)
        << prom;
    EXPECT_NE(prom.find("serve_retrieval_verified"), std::string::npos);
    EXPECT_NE(prom.find("serve_retrieval_index_bytes"),
              std::string::npos);
}

TEST(CascadeService, CascadeOnEmptyCorpusIsEmpty)
{
    ServeConfig config;
    config.flushMicros = 200;
    config.retrieval.mode = RetrievalMode::Cascade;
    SearchService service(config, {});
    CloneSearchCorpus corpus =
        makeCloneSearchCorpus(DatasetId::AIDS, 1, 1);
    QueryResult result = service.submit(corpus.queries[0]).get();
    EXPECT_TRUE(result.scores.empty());
    EXPECT_TRUE(result.topK.empty());
}

// ---- Window-scheduler visibility (satellite of the CGC port) --------

TEST(WindowMetrics, TotalsAccumulateAndReachServiceExports)
{
    WindowSchedStats before = windowSchedTotals();
    Matrix x(64, 32), y(48, 32);
    for (size_t i = 0; i < x.size(); ++i)
        x.data()[i] = static_cast<float>(i % 7) * 0.25f;
    for (size_t i = 0; i < y.size(); ++i)
        y.data()[i] = static_cast<float>(i % 5) * 0.5f;
    WindowSchedConfig small;
    small.cacheBytes = 16 << 10; // force several windows
    similarityMatrixWindowed(x, y, SimilarityKind::Cosine, small);
    WindowSchedStats after = windowSchedTotals();
    EXPECT_GT(after.windows, before.windows);
    EXPECT_GE(after.xTileLoads, before.xTileLoads + 1);
    EXPECT_GE(after.yTileLoads, before.yTileLoads + 1);

    // A service constructed NOW must report only its own lifetime's
    // window activity (rebased totals), and expose it in both formats.
    CloneSearchCorpus corpus =
        makeCloneSearchCorpus(DatasetId::AIDS, 1, 2);
    ServeConfig config;
    config.flushMicros = 200;
    SearchService service(config, corpus.candidates);
    MetricsSnapshot snap = service.metrics();
    EXPECT_EQ(snap.windowWindows, 0u)
        << "pre-construction windows leaked into the service metrics";
    std::string json = snap.toJson();
    EXPECT_NE(json.find("window_windows"), std::string::npos);
    EXPECT_NE(json.find("window_slides"), std::string::npos);
    std::string prom = service.registry().snapshot().toPrometheus();
    EXPECT_NE(prom.find("serve_window_windows"), std::string::npos);
    EXPECT_NE(prom.find("serve_window_x_tile_loads"),
              std::string::npos);

    // Window activity during the service's lifetime shows up.
    similarityMatrixWindowed(x, y, SimilarityKind::Cosine, small);
    MetricsSnapshot snap2 = service.metrics();
    EXPECT_GT(snap2.windowWindows, 0u);
    service.shutdown();
}

// ---- The CI recall gate ---------------------------------------------

/**
 * The fast regression gate scripts/ci.sh runs at 10^4 candidates
 * (CEGMA_RETRIEVAL_CI_CANDIDATES=10000): cascade recall@10 against the
 * exhaustive oracle must stay >= 0.99. The plain ctest run uses a
 * 2000-candidate corpus to stay fast; the full 10^5 sweep lives in
 * `bench_to_json --retrieval` only.
 *
 * Recall is tie-aware, the standard treatment when ground truth has
 * score ties: a cascade top-10 slot counts as a hit when its exact
 * score is >= the oracle's 10th-best score. Under an untrained model
 * many candidates tie bit-exactly at the score ceiling, where *any*
 * top-scoring subset is equally correct and id-matching would reject
 * correct answers at random. Cascade scores are bit-identical to
 * exhaustive for every verified pair (proven above), so comparing
 * scores across the two services is exact.
 */
TEST(RetrievalGate, CascadeRecallAtLeast99Percent)
{
    uint32_t num_candidates = 2000;
    if (const char *env = std::getenv("CEGMA_RETRIEVAL_CI_CANDIDATES");
        env != nullptr && *env != '\0') {
        num_candidates = static_cast<uint32_t>(std::stoul(env));
    }
    const uint32_t num_queries = 24;
    const uint32_t k = 10;
    CloneSearchCorpus corpus = makeCloneSearchCorpus(
        DatasetId::AIDS, num_queries, num_candidates);

    ServeConfig base;
    base.model = ModelId::SimGnn;
    base.maxBatch = num_queries;
    base.topK = k;

    ServeConfig cascade = base;
    cascade.retrieval.mode = RetrievalMode::Cascade;
    cascade.retrieval.shortlist = 256;
    cascade.retrieval.tagPrune = 0.0;

    // The oracle's 10th-best exact score per query.
    std::vector<double> threshold(num_queries);
    {
        SearchService oracle(base, corpus.candidates);
        std::vector<std::future<QueryResult>> futures;
        for (const Graph &query : corpus.queries)
            futures.push_back(oracle.submit(query));
        for (uint32_t q = 0; q < num_queries; ++q) {
            QueryResult result = futures[q].get();
            ASSERT_EQ(result.topK.size(), k);
            threshold[q] = result.topK.back().score;
        }
    }

    size_t hit = 0, want = 0;
    {
        SearchService service(cascade, corpus.candidates);
        std::vector<std::future<QueryResult>> futures;
        for (const Graph &query : corpus.queries)
            futures.push_back(service.submit(query));
        for (uint32_t q = 0; q < num_queries; ++q) {
            QueryResult result = futures[q].get();
            want += k;
            size_t counted = 0;
            for (const SearchHit &h : result.topK) {
                if (counted == k)
                    break;
                if (h.score >= threshold[q]) {
                    ++hit;
                    ++counted;
                }
            }
        }
    }

    ASSERT_GT(want, 0u);
    double recall =
        static_cast<double>(hit) / static_cast<double>(want);
    EXPECT_GE(recall, 0.99)
        << "recall@" << k << " over " << num_queries << " queries x "
        << num_candidates << " candidates: " << recall;
}

} // namespace
} // namespace cegma
