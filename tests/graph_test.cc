/**
 * @file
 * Unit and property tests for the graph substrate: CSR construction,
 * generators, dataset builders, batching, and the global adjacency
 * layout of Figure 15.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/rng.hh"
#include "graph/batch.hh"
#include "graph/dataset.hh"
#include "graph/generators.hh"
#include "graph/graph.hh"

namespace cegma {
namespace {

TEST(Graph, FromEdgesBasics)
{
    Graph g = Graph::fromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {0, 1}, {2, 2}});
    EXPECT_EQ(g.numNodes(), 4u);
    EXPECT_EQ(g.numEdges(), 3u); // duplicate and self-loop dropped
    EXPECT_EQ(g.numArcs(), 6u);
    EXPECT_EQ(g.degree(1), 2u);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_TRUE(g.hasEdge(1, 0));
    EXPECT_FALSE(g.hasEdge(0, 3));
}

TEST(Graph, NeighborsSorted)
{
    Graph g = Graph::fromEdges(5, {{3, 0}, {3, 4}, {3, 1}, {3, 2}});
    auto ns = g.neighbors(3);
    ASSERT_EQ(ns.size(), 4u);
    for (size_t i = 1; i < ns.size(); ++i)
        EXPECT_LT(ns[i - 1], ns[i]);
}

TEST(Graph, LabelsDefaultAndExplicit)
{
    Graph g1 = Graph::fromEdges(3, {{0, 1}});
    EXPECT_EQ(g1.label(2), 0u);
    EXPECT_EQ(g1.numDistinctLabels(), 1u);

    Graph g2 = Graph::fromEdges(3, {{0, 1}}, {5, 6, 5});
    EXPECT_EQ(g2.label(1), 6u);
    EXPECT_EQ(g2.numDistinctLabels(), 2u);
}

TEST(Graph, EdgeListCanonical)
{
    Graph g = Graph::fromEdges(4, {{2, 1}, {3, 0}});
    auto edges = g.edgeList();
    ASSERT_EQ(edges.size(), 2u);
    for (const auto &[u, v] : edges)
        EXPECT_LT(u, v);
}

TEST(Graph, SubstituteEdgesPreservesCounts)
{
    Rng rng(1);
    Graph g = erdosRenyiGnm(30, 60, rng);
    Graph h = g.substituteEdges(4, rng);
    EXPECT_EQ(h.numNodes(), g.numNodes());
    // Same edge count (4 removed, 4 added) as long as non-edges exist.
    EXPECT_EQ(h.numEdges(), g.numEdges());
    // And it actually changed something.
    auto ge = g.edgeList();
    auto he = h.edgeList();
    EXPECT_NE(ge, he);
}

TEST(Generators, ErdosRenyiExactEdgeCount)
{
    Rng rng(2);
    Graph g = erdosRenyiGnm(50, 100, rng);
    EXPECT_EQ(g.numNodes(), 50u);
    EXPECT_EQ(g.numEdges(), 100u);
}

TEST(Generators, ErdosRenyiClampsToCompleteGraph)
{
    Rng rng(3);
    Graph g = erdosRenyiGnm(5, 1000, rng);
    EXPECT_EQ(g.numEdges(), 10u);
}

TEST(Generators, BarabasiAlbertConnectedAndSized)
{
    Rng rng(4);
    Graph g = barabasiAlbert(100, 2, rng);
    EXPECT_EQ(g.numNodes(), 100u);
    EXPECT_GE(g.numEdges(), 99u);
    // Hub structure: max degree well above the attach parameter.
    uint32_t max_deg = 0;
    for (NodeId v = 0; v < g.numNodes(); ++v)
        max_deg = std::max(max_deg, g.degree(v));
    EXPECT_GT(max_deg, 5u);
}

TEST(Generators, MoleculeGraphValenceAndLabels)
{
    Rng rng(5);
    Graph g = moleculeGraph(16, 12, rng);
    EXPECT_EQ(g.numNodes(), 16u);
    EXPECT_GE(g.numEdges(), 15u); // at least the backbone tree
    EXPECT_GE(g.numDistinctLabels(), 1u);
    // Carbon (label 0) should dominate on a larger sample.
    Graph big = moleculeGraph(500, 12, rng);
    size_t carbons = 0;
    for (NodeId v = 0; v < big.numNodes(); ++v)
        carbons += (big.label(v) == 0);
    EXPECT_GT(carbons, big.numNodes() / 3);
}

TEST(Generators, EgoCollabIsDense)
{
    Rng rng(6);
    Graph g = egoCollabGraph(74, 2458, rng);
    EXPECT_EQ(g.numNodes(), 74u);
    // Dense: should land within 40% of the target.
    EXPECT_GT(g.numEdges(), 1400u);
    // The ego (node 0) reaches a large share of the graph.
    EXPECT_GT(g.degree(0), 30u);
}

TEST(Generators, ThreadGraphSparseWithHubs)
{
    Rng rng(7);
    Graph g = threadGraph(430, 498, rng);
    EXPECT_EQ(g.numNodes(), 430u);
    EXPECT_GE(g.numEdges(), 429u);
    EXPECT_LE(g.numEdges(), 600u);
    // Thread structure: many degree-1 leaves.
    size_t leaves = 0;
    for (NodeId v = 0; v < g.numNodes(); ++v)
        leaves += (g.degree(v) == 1);
    EXPECT_GT(leaves, g.numNodes() / 2);
}

TEST(Generators, RandomGraphLiDegree)
{
    Rng rng(8);
    Graph g = randomGraphLi(1000, rng, 2.0);
    EXPECT_EQ(g.numNodes(), 1000u);
    EXPECT_NEAR(static_cast<double>(g.numEdges()), 1000.0, 5.0);
}

TEST(Generators, SampleGraphSizeRespectsFloorAndMean)
{
    Rng rng(9);
    double sum = 0.0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) {
        NodeId s = sampleGraphSize(100.0, 0.35, 5, rng);
        EXPECT_GE(s, 5u);
        sum += s;
    }
    EXPECT_NEAR(sum / n, 100.0, 8.0);
}

class DatasetFixture : public ::testing::TestWithParam<DatasetId>
{
};

TEST_P(DatasetFixture, MatchesTableTwoStatistics)
{
    DatasetId id = GetParam();
    const DatasetSpec &spec = datasetSpec(id);
    // Bound pair count to keep the sweep fast; sizes are i.i.d.
    Dataset ds = makeDataset(id, 7, 64);
    ASSERT_FALSE(ds.pairs.empty());
    EXPECT_LE(ds.pairs.size(), 64u);

    double avg_nodes = ds.measuredAvgNodes();
    double avg_edges = ds.measuredAvgEdges();
    // Within 30% of the paper's Table II averages.
    EXPECT_NEAR(avg_nodes, spec.avgNodes, spec.avgNodes * 0.30)
        << spec.name;
    EXPECT_NEAR(avg_edges, spec.avgEdges, spec.avgEdges * 0.40)
        << spec.name;
}

TEST_P(DatasetFixture, PairsAlternateSimilarity)
{
    Dataset ds = makeDataset(GetParam(), 7, 8);
    ASSERT_GE(ds.pairs.size(), 2u);
    EXPECT_TRUE(ds.pairs[0].similar);
    EXPECT_FALSE(ds.pairs[1].similar);
}

TEST_P(DatasetFixture, DeterministicForSeed)
{
    DatasetId id = GetParam();
    Dataset a = makeDataset(id, 99, 4);
    Dataset b = makeDataset(id, 99, 4);
    ASSERT_EQ(a.pairs.size(), b.pairs.size());
    for (size_t i = 0; i < a.pairs.size(); ++i) {
        EXPECT_EQ(a.pairs[i].target.numNodes(),
                  b.pairs[i].target.numNodes());
        EXPECT_EQ(a.pairs[i].target.edgeList(),
                  b.pairs[i].target.edgeList());
        EXPECT_EQ(a.pairs[i].query.edgeList(), b.pairs[i].query.edgeList());
    }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetFixture,
                         ::testing::ValuesIn(allDatasets()),
                         [](const auto &info) {
                             std::string name = datasetSpec(info.param).name;
                             for (auto &ch : name) {
                                 if (ch == '-')
                                     ch = '_';
                             }
                             return name;
                         });

TEST(Batch, MakeBatchesCoversDataset)
{
    Dataset ds = makeDataset(DatasetId::AIDS, 7, 10);
    auto batches = makeBatches(ds, 4);
    ASSERT_EQ(batches.size(), 3u);
    EXPECT_EQ(batches[0].pairs.size(), 4u);
    EXPECT_EQ(batches[2].pairs.size(), 2u);
    size_t total = 0;
    for (const auto &b : batches)
        total += b.pairs.size();
    EXPECT_EQ(total, ds.pairs.size());
}

TEST(Batch, CountsAreSums)
{
    Dataset ds = makeDataset(DatasetId::AIDS, 7, 4);
    GraphBatch batch;
    for (const auto &pair : ds.pairs)
        batch.pairs.push_back(&pair);
    NodeId t = 0, q = 0;
    uint64_t m = 0;
    for (const auto &pair : ds.pairs) {
        t += pair.target.numNodes();
        q += pair.query.numNodes();
        m += static_cast<uint64_t>(pair.target.numNodes()) *
             pair.query.numNodes();
    }
    EXPECT_EQ(batch.numTargetNodes(), t);
    EXPECT_EQ(batch.numQueryNodes(), q);
    EXPECT_EQ(batch.numMatchingPairs(), m);
}

TEST(GlobalAdjacency, LayoutOffsetsAndPairLookup)
{
    Dataset ds = makeDataset(DatasetId::AIDS, 7, 4);
    GraphBatch batch;
    for (const auto &pair : ds.pairs)
        batch.pairs.push_back(&pair);
    GlobalAdjacency ga(batch);

    EXPECT_EQ(ga.numTargetNodes(), batch.numTargetNodes());
    EXPECT_EQ(ga.numQueryNodes(), batch.numQueryNodes());
    EXPECT_EQ(ga.targetOffset(0), 0u);
    for (size_t p = 0; p < batch.pairs.size(); ++p) {
        NodeId off = ga.targetOffset(p);
        EXPECT_EQ(ga.pairOfTargetRow(off), p);
        EXPECT_EQ(ga.pairOfTargetRow(
                      off + batch.pairs[p]->target.numNodes() - 1),
                  p);
    }
}

TEST(GlobalAdjacency, DenseRenderStructure)
{
    // Two tiny pairs; verify block placement by hand.
    Graph g1 = Graph::fromEdges(2, {{0, 1}});
    Graph g2 = Graph::fromEdges(2, {{0, 1}});
    GraphPair pair{g1, g2, true};
    GraphBatch batch;
    batch.pairs.push_back(&pair);
    GlobalAdjacency ga(batch);
    ASSERT_EQ(ga.numGlobalNodes(), 4u);
    auto pic = ga.renderDense();
    auto at = [&](NodeId r, NodeId c) { return pic[r * 4 + c]; };
    // Intra target edge (0,1) symmetric.
    EXPECT_EQ(at(0, 1), 1);
    EXPECT_EQ(at(1, 0), 1);
    // Intra query edge in bottom-right block.
    EXPECT_EQ(at(2, 3), 1);
    // Cross block all ones in the top-right.
    EXPECT_EQ(at(0, 2), 1);
    EXPECT_EQ(at(1, 3), 1);
    // Bottom-left stays empty.
    EXPECT_EQ(at(2, 0), 0);
    EXPECT_EQ(at(3, 1), 0);
}

TEST(GlobalAdjacency, MatchMaskFiltersRows)
{
    Graph g1 = Graph::fromEdges(2, {{0, 1}});
    Graph g2 = Graph::fromEdges(2, {{0, 1}});
    GraphPair pair{g1, g2, true};
    GraphBatch batch;
    batch.pairs.push_back(&pair);
    GlobalAdjacency ga(batch);
    std::vector<std::vector<bool>> mask{{true, false}};
    auto pic = ga.renderDense(mask);
    EXPECT_EQ(pic[0 * 4 + 2], 1); // kept row
    EXPECT_EQ(pic[1 * 4 + 2], 0); // filtered duplicate row
    EXPECT_EQ(pic[1 * 4 + 0], 1); // intra edges untouched
}

TEST(GlobalAdjacency, AsciiRenderNonEmpty)
{
    Dataset ds = makeDataset(DatasetId::AIDS, 7, 4);
    GraphBatch batch;
    for (const auto &pair : ds.pairs)
        batch.pairs.push_back(&pair);
    GlobalAdjacency ga(batch);
    std::string art = ga.renderAscii();
    EXPECT_GT(art.size(), 10u);
    EXPECT_NE(art.find('\n'), std::string::npos);
}

} // namespace
} // namespace cegma
