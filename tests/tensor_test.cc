/**
 * @file
 * Unit tests for the dense matrix substrate and the size-bucketed
 * workspace pool backing its storage.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "common/rng.hh"
#include "tensor/matrix.hh"
#include "tensor/workspace.hh"

namespace cegma {
namespace {

TEST(Matrix, ConstructionAndAccess)
{
    Matrix m(2, 3);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_EQ(m.size(), 6u);
    m.at(1, 2) = 5.0f;
    EXPECT_FLOAT_EQ(m.at(1, 2), 5.0f);
    EXPECT_FLOAT_EQ(m.at(0, 0), 0.0f);
}

TEST(Matrix, FromData)
{
    Matrix m(2, 2, {1.0f, 2.0f, 3.0f, 4.0f});
    EXPECT_FLOAT_EQ(m.at(0, 1), 2.0f);
    EXPECT_FLOAT_EQ(m.at(1, 0), 3.0f);
}

TEST(Matrix, RowsEqual)
{
    Matrix m(3, 2, {1, 2, 1, 2, 3, 4});
    EXPECT_TRUE(m.rowsEqual(0, 1));
    EXPECT_FALSE(m.rowsEqual(0, 2));
}

TEST(Matrix, Matmul)
{
    Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
    Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
    Matrix c = matmul(a, b);
    ASSERT_EQ(c.rows(), 2u);
    ASSERT_EQ(c.cols(), 2u);
    EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
    EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
    EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Matrix, MatmulNTMatchesExplicitTranspose)
{
    Rng rng(4);
    Matrix a(5, 7);
    Matrix b(6, 7);
    a.fillXavier(rng);
    b.fillXavier(rng);
    Matrix direct = matmulNT(a, b);
    Matrix via_t = matmul(a, transpose(b));
    EXPECT_TRUE(direct.approxEquals(via_t, 1e-5f));
}

TEST(Matrix, AddAndBias)
{
    Matrix a(2, 2, {1, 2, 3, 4});
    Matrix b(2, 2, {10, 20, 30, 40});
    Matrix c = add(a, b);
    EXPECT_FLOAT_EQ(c.at(1, 1), 44.0f);

    Matrix bias(1, 2, {100, 200});
    addBiasInPlace(c, bias);
    EXPECT_FLOAT_EQ(c.at(0, 0), 111.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 244.0f);
}

TEST(Matrix, HConcat)
{
    Matrix a(2, 1, {1, 2});
    Matrix b(2, 2, {3, 4, 5, 6});
    Matrix c = hconcat({&a, &b});
    ASSERT_EQ(c.cols(), 3u);
    EXPECT_FLOAT_EQ(c.at(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(c.at(0, 2), 4.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 5.0f);
}

TEST(Matrix, Activations)
{
    Matrix m(1, 4, {-1.0f, 0.0f, 0.5f, 2.0f});
    Matrix r = m;
    reluInPlace(r);
    EXPECT_FLOAT_EQ(r.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(r.at(0, 3), 2.0f);

    Matrix s = m;
    sigmoidInPlace(s);
    EXPECT_NEAR(s.at(0, 1), 0.5f, 1e-6f);
    EXPECT_GT(s.at(0, 3), 0.85f);

    Matrix t = m;
    tanhInPlace(t);
    EXPECT_NEAR(t.at(0, 1), 0.0f, 1e-6f);
    EXPECT_NEAR(t.at(0, 0), -std::tanh(1.0f), 1e-6f);
}

TEST(Matrix, SoftmaxRowsSumToOne)
{
    Matrix m(2, 3, {1, 2, 3, -5, 0, 5});
    softmaxRowsInPlace(m);
    for (size_t r = 0; r < 2; ++r) {
        float sum = 0.0f;
        for (size_t c = 0; c < 3; ++c) {
            EXPECT_GT(m.at(r, c), 0.0f);
            sum += m.at(r, c);
        }
        EXPECT_NEAR(sum, 1.0f, 1e-5f);
    }
    // Softmax is monotone in its input.
    EXPECT_LT(m.at(0, 0), m.at(0, 2));
}

TEST(Matrix, Norms)
{
    Matrix m(2, 2, {3, 4, 0, 0});
    Matrix l2 = rowL2Norms(m);
    EXPECT_FLOAT_EQ(l2.at(0, 0), 5.0f);
    EXPECT_FLOAT_EQ(l2.at(1, 0), 0.0f);
    Matrix sq = rowSquaredNorms(m);
    EXPECT_FLOAT_EQ(sq.at(0, 0), 25.0f);
}

TEST(Matrix, ColumnReductions)
{
    Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
    Matrix sums = columnSums(m);
    EXPECT_FLOAT_EQ(sums.at(0, 0), 5.0f);
    EXPECT_FLOAT_EQ(sums.at(0, 2), 9.0f);
    Matrix means = columnMeans(m);
    EXPECT_FLOAT_EQ(means.at(0, 1), 3.5f);
}

TEST(Matrix, TransposeRoundTrip)
{
    Rng rng(8);
    Matrix m(4, 6);
    m.fillXavier(rng);
    EXPECT_TRUE(transpose(transpose(m)).equals(m));
}

TEST(Matrix, XavierRange)
{
    Rng rng(15);
    Matrix m(64, 64);
    m.fillXavier(rng);
    float limit = std::sqrt(6.0f / 128.0f);
    for (size_t i = 0; i < m.size(); ++i) {
        EXPECT_LE(std::fabs(m.data()[i]), limit);
    }
    // Should not be all zeros.
    EXPECT_FALSE(m.equals(Matrix(64, 64)));
}

TEST(Matrix, MatmulAssociativityProperty)
{
    Rng rng(21);
    Matrix a(3, 4), b(4, 5), c(5, 2);
    a.fillXavier(rng);
    b.fillXavier(rng);
    c.fillXavier(rng);
    Matrix left = matmul(matmul(a, b), c);
    Matrix right = matmul(a, matmul(b, c));
    EXPECT_TRUE(left.approxEquals(right, 1e-4f));
}

// ---- WorkspacePool --------------------------------------------------

TEST(WorkspacePool, BucketRoundingIsExactPowersOfTwo)
{
    EXPECT_EQ(WorkspacePool::bucketIndex(1), 0);
    EXPECT_EQ(WorkspacePool::bucketIndex(64), 0);
    EXPECT_EQ(WorkspacePool::bucketIndex(65), 1);
    EXPECT_EQ(WorkspacePool::bucketIndex(128), 1);
    EXPECT_EQ(WorkspacePool::bucketIndex(129), 2);
    EXPECT_EQ(WorkspacePool::bucketBytes(0), 64u);
    EXPECT_EQ(WorkspacePool::bucketBytes(1), 128u);
    // Every bucket's block size maps back to that bucket, and one byte
    // past the previous bucket already rounds up into it — the two
    // edges that keep release() recovering the exact acquire() bucket.
    for (int idx = 1; idx < WorkspacePool::kNumBuckets; ++idx) {
        size_t bytes = WorkspacePool::bucketBytes(idx);
        EXPECT_EQ(WorkspacePool::bucketIndex(bytes), idx);
        EXPECT_EQ(WorkspacePool::bucketIndex(bytes / 2 + 1), idx);
    }
    EXPECT_EQ(WorkspacePool::bucketBytes(WorkspacePool::kNumBuckets - 1),
              WorkspacePool::kMaxBucketBytes);
}

TEST(WorkspacePool, RecyclesSameThreadBlocksWithHitMissAccounting)
{
    WorkspacePool &pool = WorkspacePool::instance();
    if (!pool.enabled())
        GTEST_SKIP() << "CEGMA_WORKSPACE=off";
    // Empty this thread's free lists and the shared pool so the first
    // acquire below is deterministically a miss. (Other threads'
    // caches are untouched — they cannot serve this thread anyway.)
    size_t budget = pool.sharedBudgetBytes();
    pool.setSharedBudgetBytes(0);
    pool.drainThreadCache();
    pool.trimShared();

    WorkspaceStats t0 = pool.stats();
    void *p = pool.acquire(1000); // -> the 1024-byte bucket
    ASSERT_NE(p, nullptr);
    WorkspaceStats t1 = pool.stats();
    EXPECT_EQ(t1.misses, t0.misses + 1);
    EXPECT_EQ(t1.hits, t0.hits);

    // Release parks in this thread's free list; a different request
    // size mapping to the same bucket gets the identical block back.
    pool.release(p, 1000);
    void *q = pool.acquire(900);
    EXPECT_EQ(q, p);
    WorkspaceStats t2 = pool.stats();
    EXPECT_EQ(t2.hits, t1.hits + 1);
    EXPECT_EQ(t2.misses, t1.misses);

    pool.release(q, 900);
    pool.drainThreadCache(); // budget 0: freed, not parked
    pool.setSharedBudgetBytes(budget);
}

TEST(WorkspacePool, EveryBlockIs64ByteAligned)
{
    WorkspacePool &pool = WorkspacePool::instance();
    for (size_t bytes : {size_t{1}, size_t{64}, size_t{100},
                         size_t{4096}, size_t{1} << 20,
                         WorkspacePool::kMaxBucketBytes + 1}) {
        void *p = pool.acquire(bytes);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(reinterpret_cast<uintptr_t>(p) %
                      WorkspacePool::kAlignment,
                  0u)
            << "bytes=" << bytes;
        pool.release(p, bytes);
    }
}

TEST(WorkspacePool, OversizedRequestsBypassTheBuckets)
{
    WorkspacePool &pool = WorkspacePool::instance();
    if (!pool.enabled())
        GTEST_SKIP() << "CEGMA_WORKSPACE=off";
    const size_t big = WorkspacePool::kMaxBucketBytes + 1;
    WorkspaceStats before = pool.stats();
    void *p = pool.acquire(big);
    ASSERT_NE(p, nullptr);
    pool.release(p, big);
    // Released straight to the OS, never cached: a second round trips
    // the oversized counter again instead of hitting a free list.
    void *q = pool.acquire(big);
    ASSERT_NE(q, nullptr);
    pool.release(q, big);
    WorkspaceStats after = pool.stats();
    EXPECT_EQ(after.oversized, before.oversized + 2);
    EXPECT_EQ(after.hits, before.hits);
    EXPECT_EQ(after.cachedBytes, before.cachedBytes);
}

TEST(WorkspacePool, MatrixStorageComesFromThePool)
{
    WorkspacePool &pool = WorkspacePool::instance();
    if (!pool.enabled())
        GTEST_SKIP() << "CEGMA_WORKSPACE=off";
    // Warm the bucket with one Matrix, then rebuild the same shape:
    // the second construction must be a pool hit (the hot-path pattern
    // — per-pair temporaries of a fixed shape, batch after batch).
    {
        Matrix warm(32, 32);
        warm.at(0, 0) = 1.0f;
    }
    WorkspaceStats before = pool.stats();
    Matrix again(32, 32);
    EXPECT_FLOAT_EQ(again.at(0, 0), 0.0f); // recycled bytes are zeroed
    WorkspaceStats after = pool.stats();
    EXPECT_EQ(after.hits, before.hits + 1);
    EXPECT_EQ(after.misses, before.misses);
}

} // namespace
} // namespace cegma
