/**
 * @file
 * cegma_sim — command-line front end to the simulator.
 *
 * Usage:
 *   cegma_sim [--model NAME] [--dataset NAME] [--platform NAME]
 *             [--pairs N] [--seed S] [--batch B]
 *             [--save-traces FILE | --load-traces FILE] [--csv]
 *   cegma_sim --functional [--dedup=on|off] [--memo=on|off]
 *             [--clone-search QxC] [--model NAME] [--dataset NAME]
 *             [--pairs N] [--threads T] [--csv]
 *
 * Examples:
 *   cegma_sim --model GMN-Li --dataset RD-5K --platform CEGMA
 *   cegma_sim --dataset AIDS --pairs 200 --csv        # all platforms
 *   cegma_sim --model GraphSim --dataset RD-B --save-traces rdb.trc
 *   cegma_sim --load-traces rdb.trc --platform AWB-GCN
 *   cegma_sim --functional --dataset RD-B --dedup=on --memo=on \
 *             --clone-search 4x4      # elastic wall-clock inference
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "accel/runner.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "io/trace_io.hh"
#include "obs/build_info.hh"
#include "sim/energy.hh"

using namespace cegma;

namespace {

struct Options
{
    std::optional<ModelId> model;
    std::optional<DatasetId> dataset;
    std::optional<PlatformId> platform;
    uint32_t pairs = 32;
    uint64_t seed = 7;
    uint32_t batch = 32;
    uint32_t threads = 0; // 0 = CEGMA_THREADS / hardware default
    std::string saveTraces;
    std::string loadTraces;
    bool csv = false;
    bool functional = false;
    bool dedup = false;
    bool memo = false;
    uint32_t cloneQueries = 0;    // nonzero enables clone-search pairs
    uint32_t cloneCandidates = 0;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--model NAME] [--dataset NAME] "
                 "[--platform NAME]\n"
                 "          [--pairs N] [--seed S] [--batch B] "
                 "[--threads T]\n"
                 "          [--save-traces FILE | --load-traces FILE] "
                 "[--csv]\n"
                 "       %s --functional [--dedup=on|off] "
                 "[--memo=on|off]\n"
                 "          [--clone-search QxC] [--model NAME] "
                 "[--dataset NAME]\n"
                 "          [--pairs N] [--threads T] [--csv]\n"
                 "models: GMN-Li GraphSim SimGNN (default: all)\n"
                 "datasets: AIDS COLLAB GITHUB RD-B RD-5K RD-12K\n"
                 "platforms: PyG-CPU PyG-GPU HyGCN AWB-GCN CEGMA-EMF "
                 "CEGMA-CGC CEGMA (default: all)\n",
                 argv0, argv0);
    std::exit(2);
}

ModelId
parseModel(const std::string &name)
{
    for (ModelId id : allModels()) {
        if (modelConfig(id).name == name)
            return id;
    }
    fatal("unknown model '%s'", name.c_str());
}

DatasetId
parseDataset(const std::string &name)
{
    for (DatasetId id : allDatasets()) {
        if (datasetSpec(id).name == name)
            return id;
    }
    fatal("unknown dataset '%s'", name.c_str());
}

PlatformId
parsePlatform(const std::string &name)
{
    for (PlatformId id :
         {PlatformId::PygCpu, PlatformId::PygGpu, PlatformId::HyGcn,
          PlatformId::AwbGcn, PlatformId::CegmaEmf, PlatformId::CegmaCgc,
          PlatformId::Cegma}) {
        if (name == platformName(id))
            return id;
    }
    fatal("unknown platform '%s'", name.c_str());
}

/** Parse "on"/"off" (the documented toggle form). */
bool
parseToggle(const std::string &value, const char *flag, const char *argv0)
{
    if (value == "on")
        return true;
    if (value == "off")
        return false;
    std::fprintf(stderr, "%s expects on|off, got '%s'\n", flag,
                 value.c_str());
    usage(argv0);
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg.rfind("--dedup=", 0) == 0) {
            opts.dedup = parseToggle(arg.substr(8), "--dedup", argv[0]);
            continue;
        }
        if (arg.rfind("--memo=", 0) == 0) {
            opts.memo = parseToggle(arg.substr(7), "--memo", argv[0]);
            continue;
        }
        if (arg == "--model") {
            opts.model = parseModel(next());
        } else if (arg == "--dataset") {
            opts.dataset = parseDataset(next());
        } else if (arg == "--platform") {
            opts.platform = parsePlatform(next());
        } else if (arg == "--pairs") {
            opts.pairs = static_cast<uint32_t>(std::stoul(next()));
        } else if (arg == "--seed") {
            opts.seed = std::stoull(next());
        } else if (arg == "--batch") {
            opts.batch = static_cast<uint32_t>(std::stoul(next()));
        } else if (arg == "--threads") {
            opts.threads = static_cast<uint32_t>(std::stoul(next()));
        } else if (arg == "--save-traces") {
            opts.saveTraces = next();
        } else if (arg == "--load-traces") {
            opts.loadTraces = next();
        } else if (arg == "--csv") {
            opts.csv = true;
        } else if (arg == "--functional") {
            opts.functional = true;
        } else if (arg == "--dedup") {
            opts.dedup = parseToggle(next(), "--dedup", argv[0]);
        } else if (arg == "--memo") {
            opts.memo = parseToggle(next(), "--memo", argv[0]);
        } else if (arg == "--clone-search") {
            std::string spec = next();
            size_t x = spec.find('x');
            if (x == std::string::npos)
                usage(argv[0]);
            opts.cloneQueries =
                static_cast<uint32_t>(std::stoul(spec.substr(0, x)));
            opts.cloneCandidates =
                static_cast<uint32_t>(std::stoul(spec.substr(x + 1)));
            if (opts.cloneQueries == 0 || opts.cloneCandidates == 0)
                usage(argv[0]);
        } else if (arg == "--version") {
            std::printf("%s\n", obs::buildInfoString().c_str());
            std::exit(0);
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage(argv[0]);
        }
    }
    return opts;
}

void
reportRow(TextTable &table, const std::string &model,
          const std::string &dataset, PlatformId platform,
          const SimResult &result)
{
    EnergyModel energy;
    table.addRow({model, dataset, platformName(platform),
                  std::to_string(result.pairsSimulated),
                  TextTable::fmt(result.msPerPair(GHz), 4),
                  TextTable::fmtCount(result.throughput(GHz)),
                  TextTable::fmtBytes(
                      static_cast<double>(result.dramBytes())),
                  TextTable::fmt(result.energyNj(energy) / 1e6, 3)});
}

/** Build the evaluation pairs for one dataset id per the options. */
Dataset
makeEvalDataset(DatasetId did, const Options &opts)
{
    if (opts.cloneQueries > 0) {
        return makeCloneSearchDataset(did, opts.cloneQueries,
                                      opts.cloneCandidates, opts.seed);
    }
    return makeDataset(did, opts.seed, opts.pairs);
}

/**
 * The --functional mode: wall-clock inference through the floating-
 * point models with the elastic knobs (--dedup / --memo). Scores are
 * bit-identical across knob settings; ms/pair is the measurement.
 */
int
runFunctionalMode(const Options &opts)
{
    FunctionalOptions options;
    options.dedup = opts.dedup;
    options.memo = opts.memo;
    options.modelSeed = 1234;

    std::vector<ModelId> models =
        opts.model ? std::vector<ModelId>{*opts.model} : allModels();
    std::vector<DatasetId> datasets =
        opts.dataset ? std::vector<DatasetId>{*opts.dataset}
                     : allDatasets();

    TextTable table({"model", "dataset", "pairs", "dedup", "memo",
                     "ms/pair", "pairs/s", "memo hit%", "skip%"});
    for (DatasetId did : datasets) {
        Dataset ds = makeEvalDataset(did, opts);
        for (ModelId mid : models) {
            // --clone-search sizes the pair grid itself; --pairs caps
            // only the i.i.d. test-split datasets.
            uint32_t cap = opts.cloneQueries > 0 ? 0 : opts.pairs;
            FunctionalResult result =
                runFunctional(mid, ds, options, cap);
            size_t lookups = result.memoHits + result.memoMisses;
            double hit_pct =
                lookups > 0 ? 100.0 * static_cast<double>(
                                          result.memoHits) /
                                  static_cast<double>(lookups)
                            : 0.0;
            table.addRow(
                {modelConfig(mid).name, datasetSpec(did).name,
                 std::to_string(result.scores.size()),
                 opts.dedup ? "on" : "off", opts.memo ? "on" : "off",
                 TextTable::fmt(result.msPerPair(), 4),
                 TextTable::fmtCount(result.msPerPair() > 0.0
                                         ? 1e3 / result.msPerPair()
                                         : 0.0),
                 TextTable::fmt(hit_pct, 1),
                 TextTable::fmt(100.0 * result.dedupSkipRatio(), 1)});
        }
    }
    if (opts.csv) {
        table.printCsv(std::cout);
    } else {
        table.print(std::cout);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    Options opts = parseArgs(argc, argv);
    if (opts.threads != 0)
        ThreadPool::instance().setThreads(opts.threads);

    if (opts.functional)
        return runFunctionalMode(opts);

    std::vector<PlatformId> platforms;
    if (opts.platform) {
        platforms.push_back(*opts.platform);
    } else {
        platforms = {PlatformId::PygCpu,   PlatformId::PygGpu,
                     PlatformId::HyGcn,    PlatformId::AwbGcn,
                     PlatformId::CegmaEmf, PlatformId::CegmaCgc,
                     PlatformId::Cegma};
    }

    TextTable table({"model", "dataset", "platform", "pairs",
                     "ms/pair", "pairs/s", "DRAM", "energy mJ"});

    if (!opts.loadTraces.empty()) {
        TraceBundle bundle = loadTraces(opts.loadTraces);
        if (bundle.size() == 0)
            fatal("trace file '%s' holds no traces",
                  opts.loadTraces.c_str());
        std::string model =
            modelConfig(bundle.traces().front().model).name;
        for (PlatformId p : platforms) {
            reportRow(table, model, opts.loadTraces, p,
                      runPlatform(p, bundle.traces(), opts.batch));
        }
    } else {
        std::vector<ModelId> models =
            opts.model ? std::vector<ModelId>{*opts.model} : allModels();
        std::vector<DatasetId> datasets =
            opts.dataset ? std::vector<DatasetId>{*opts.dataset}
                         : allDatasets();
        for (DatasetId did : datasets) {
            Dataset ds = makeDataset(did, opts.seed, opts.pairs);
            for (ModelId mid : models) {
                auto traces = buildTraces(mid, ds, 0);
                if (!opts.saveTraces.empty())
                    saveTraces(opts.saveTraces, traces);
                for (PlatformId p : platforms) {
                    reportRow(table, modelConfig(mid).name,
                              datasetSpec(did).name, p,
                              runPlatform(p, traces, opts.batch));
                }
            }
        }
    }

    if (opts.csv) {
        table.printCsv(std::cout);
    } else {
        table.print(std::cout);
    }
    return 0;
}
