/**
 * @file
 * cegma_sim — command-line front end to the simulator.
 *
 * Usage:
 *   cegma_sim [--model NAME] [--dataset NAME] [--platform NAME]
 *             [--pairs N] [--seed S] [--batch B]
 *             [--save-traces FILE | --load-traces FILE] [--csv]
 *
 * Examples:
 *   cegma_sim --model GMN-Li --dataset RD-5K --platform CEGMA
 *   cegma_sim --dataset AIDS --pairs 200 --csv        # all platforms
 *   cegma_sim --model GraphSim --dataset RD-B --save-traces rdb.trc
 *   cegma_sim --load-traces rdb.trc --platform AWB-GCN
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "accel/runner.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "io/trace_io.hh"
#include "sim/energy.hh"

using namespace cegma;

namespace {

struct Options
{
    std::optional<ModelId> model;
    std::optional<DatasetId> dataset;
    std::optional<PlatformId> platform;
    uint32_t pairs = 32;
    uint64_t seed = 7;
    uint32_t batch = 32;
    uint32_t threads = 0; // 0 = CEGMA_THREADS / hardware default
    std::string saveTraces;
    std::string loadTraces;
    bool csv = false;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--model NAME] [--dataset NAME] "
                 "[--platform NAME]\n"
                 "          [--pairs N] [--seed S] [--batch B] "
                 "[--threads T]\n"
                 "          [--save-traces FILE | --load-traces FILE] "
                 "[--csv]\n"
                 "models: GMN-Li GraphSim SimGNN (default: all)\n"
                 "datasets: AIDS COLLAB GITHUB RD-B RD-5K RD-12K\n"
                 "platforms: PyG-CPU PyG-GPU HyGCN AWB-GCN CEGMA-EMF "
                 "CEGMA-CGC CEGMA (default: all)\n",
                 argv0);
    std::exit(2);
}

ModelId
parseModel(const std::string &name)
{
    for (ModelId id : allModels()) {
        if (modelConfig(id).name == name)
            return id;
    }
    fatal("unknown model '%s'", name.c_str());
}

DatasetId
parseDataset(const std::string &name)
{
    for (DatasetId id : allDatasets()) {
        if (datasetSpec(id).name == name)
            return id;
    }
    fatal("unknown dataset '%s'", name.c_str());
}

PlatformId
parsePlatform(const std::string &name)
{
    for (PlatformId id :
         {PlatformId::PygCpu, PlatformId::PygGpu, PlatformId::HyGcn,
          PlatformId::AwbGcn, PlatformId::CegmaEmf, PlatformId::CegmaCgc,
          PlatformId::Cegma}) {
        if (name == platformName(id))
            return id;
    }
    fatal("unknown platform '%s'", name.c_str());
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--model") {
            opts.model = parseModel(next());
        } else if (arg == "--dataset") {
            opts.dataset = parseDataset(next());
        } else if (arg == "--platform") {
            opts.platform = parsePlatform(next());
        } else if (arg == "--pairs") {
            opts.pairs = static_cast<uint32_t>(std::stoul(next()));
        } else if (arg == "--seed") {
            opts.seed = std::stoull(next());
        } else if (arg == "--batch") {
            opts.batch = static_cast<uint32_t>(std::stoul(next()));
        } else if (arg == "--threads") {
            opts.threads = static_cast<uint32_t>(std::stoul(next()));
        } else if (arg == "--save-traces") {
            opts.saveTraces = next();
        } else if (arg == "--load-traces") {
            opts.loadTraces = next();
        } else if (arg == "--csv") {
            opts.csv = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage(argv[0]);
        }
    }
    return opts;
}

void
reportRow(TextTable &table, const std::string &model,
          const std::string &dataset, PlatformId platform,
          const SimResult &result)
{
    EnergyModel energy;
    table.addRow({model, dataset, platformName(platform),
                  std::to_string(result.pairsSimulated),
                  TextTable::fmt(result.msPerPair(GHz), 4),
                  TextTable::fmtCount(result.throughput(GHz)),
                  TextTable::fmtBytes(
                      static_cast<double>(result.dramBytes())),
                  TextTable::fmt(result.energyNj(energy) / 1e6, 3)});
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    Options opts = parseArgs(argc, argv);
    if (opts.threads != 0)
        ThreadPool::instance().setThreads(opts.threads);

    std::vector<PlatformId> platforms;
    if (opts.platform) {
        platforms.push_back(*opts.platform);
    } else {
        platforms = {PlatformId::PygCpu,   PlatformId::PygGpu,
                     PlatformId::HyGcn,    PlatformId::AwbGcn,
                     PlatformId::CegmaEmf, PlatformId::CegmaCgc,
                     PlatformId::Cegma};
    }

    TextTable table({"model", "dataset", "platform", "pairs",
                     "ms/pair", "pairs/s", "DRAM", "energy mJ"});

    if (!opts.loadTraces.empty()) {
        TraceBundle bundle = loadTraces(opts.loadTraces);
        if (bundle.size() == 0)
            fatal("trace file '%s' holds no traces",
                  opts.loadTraces.c_str());
        std::string model =
            modelConfig(bundle.traces().front().model).name;
        for (PlatformId p : platforms) {
            reportRow(table, model, opts.loadTraces, p,
                      runPlatform(p, bundle.traces(), opts.batch));
        }
    } else {
        std::vector<ModelId> models =
            opts.model ? std::vector<ModelId>{*opts.model} : allModels();
        std::vector<DatasetId> datasets =
            opts.dataset ? std::vector<DatasetId>{*opts.dataset}
                         : allDatasets();
        for (DatasetId did : datasets) {
            Dataset ds = makeDataset(did, opts.seed, opts.pairs);
            for (ModelId mid : models) {
                auto traces = buildTraces(mid, ds, 0);
                if (!opts.saveTraces.empty())
                    saveTraces(opts.saveTraces, traces);
                for (PlatformId p : platforms) {
                    reportRow(table, modelConfig(mid).name,
                              datasetSpec(did).name, p,
                              runPlatform(p, traces, opts.batch));
                }
            }
        }
    }

    if (opts.csv) {
        table.printCsv(std::cout);
    } else {
        table.print(std::cout);
    }
    return 0;
}
