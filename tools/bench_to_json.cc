/**
 * @file
 * bench_to_json — machine-readable kernel benchmark summary.
 *
 * Times the parallel hot kernels (GEMM, A*B^T similarity, cosine
 * normalization, EMF tag hashing) at several pool sizes, plus the
 * pre-parallel naive serial versions (`*_naive`) as a fixed baseline,
 * and writes a JSON array of {kernel, threads, ns_per_iter} records so
 * later PRs can track the perf trajectory mechanically.
 *
 * Usage:
 *   bench_to_json [--out FILE] [--threads LIST] [--min-ms M]
 *   bench_to_json --e2e [--out FILE] [--threads LIST] [--queries Q]
 *                 [--candidates C] [--reps R]
 *
 * Defaults: --out BENCH_kernels.json, --threads 1,2,4, --min-ms 200.
 * `--out -` writes to stdout.
 *
 * `--e2e` switches to the end-to-end functional-inference sweep: for
 * each model, run `runFunctional` over a duplicate-heavy RD-B
 * clone-search dataset (Q queries x C candidates, default 4x4) in the
 * three elastic modes — dense, dedup, dedup+memo — at the *last*
 * thread count of `--threads`, best-of-R reps, and write
 * {model, mode, ms_per_pair, speedup_vs_dense, ...} records to
 * BENCH_e2e.json (default). The modes are bitwise-identical in output
 * (see tests/dedup_exec_test.cc); this records how much wall clock the
 * elastic paths save.
 */

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "accel/runner.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "emf/emf.hh"
#include "gmn/similarity.hh"
#include "graph/dataset.hh"
#include "hash/xxhash.hh"
#include "tensor/matrix.hh"

using namespace cegma;

namespace {

struct Record
{
    std::string kernel;
    uint32_t threads;
    double nsPerIter;
};

/**
 * Wall-clock ns per call of `fn`, running it for at least `min_ms`
 * after one untimed warmup call.
 */
template <typename Fn>
double
timeKernel(Fn &&fn, double min_ms)
{
    using clock = std::chrono::steady_clock;
    fn(); // warmup: page in buffers, spin up the pool
    uint64_t iters = 0;
    auto start = clock::now();
    double elapsed_ms = 0.0;
    do {
        fn();
        ++iters;
        elapsed_ms = std::chrono::duration<double, std::milli>(
                         clock::now() - start)
                         .count();
    } while (elapsed_ms < min_ms);
    return elapsed_ms * 1e6 / static_cast<double>(iters);
}

// ---- Pre-parallel reference kernels (the seed implementations) ------

Matrix
matmulNaive(const Matrix &a, const Matrix &b)
{
    Matrix c(a.rows(), b.cols());
    for (size_t i = 0; i < a.rows(); ++i) {
        float *crow = c.row(i);
        for (size_t k = 0; k < a.cols(); ++k) {
            float aik = a.at(i, k);
            if (aik == 0.0f)
                continue;
            const float *brow = b.row(k);
            for (size_t j = 0; j < b.cols(); ++j)
                crow[j] += aik * brow[j];
        }
    }
    return c;
}

float
dotNaive(const float *a, const float *b, size_t n)
{
    float acc = 0.0f;
    for (size_t i = 0; i < n; ++i)
        acc += a[i] * b[i];
    return acc;
}

Matrix
matmulNTNaive(const Matrix &a, const Matrix &b)
{
    Matrix c(a.rows(), b.rows());
    for (size_t i = 0; i < a.rows(); ++i) {
        const float *arow = a.row(i);
        float *crow = c.row(i);
        for (size_t j = 0; j < b.rows(); ++j)
            crow[j] = dotNaive(arow, b.row(j), a.cols());
    }
    return c;
}

std::vector<uint32_t>
emfTagsNaive(const Matrix &features, uint32_t seed)
{
    std::vector<uint32_t> tags(features.rows());
    for (size_t v = 0; v < features.rows(); ++v) {
        tags[v] =
            hashFeatureVector(features.row(v), features.cols(), seed);
    }
    return tags;
}

void
writeJson(const std::vector<Record> &records, const std::string &path)
{
    FILE *out = path == "-" ? stdout : std::fopen(path.c_str(), "w");
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    std::fprintf(out, "[\n");
    for (size_t i = 0; i < records.size(); ++i) {
        std::fprintf(out,
                     "  {\"kernel\": \"%s\", \"threads\": %" PRIu32
                     ", \"ns_per_iter\": %.1f}%s\n",
                     records[i].kernel.c_str(), records[i].threads,
                     records[i].nsPerIter,
                     i + 1 < records.size() ? "," : "");
    }
    std::fprintf(out, "]\n");
    if (out != stdout)
        std::fclose(out);
}

// ---- End-to-end functional inference sweep (--e2e) ------------------

struct E2eRecord
{
    std::string model;
    std::string mode;
    uint32_t threads;
    size_t pairs;
    double msPerPair;
    double speedupVsDense;
    size_t memoHits;
    size_t memoMisses;
};

/** The three elastic modes, in cheap-to-expensive savings order. */
const struct
{
    const char *name;
    bool dedup;
    bool memo;
} kE2eModes[] = {
    {"dense", false, false},
    {"dedup", true, false},
    {"dedup+memo", true, true},
};

/** Best-of-`reps` ms/pair of `runFunctional` for one (model, mode). */
FunctionalResult
bestFunctionalRun(ModelId model, const Dataset &ds,
                  const FunctionalOptions &options, uint32_t reps)
{
    FunctionalResult best = runFunctional(model, ds, options);
    for (uint32_t r = 1; r < reps; ++r) {
        FunctionalResult run = runFunctional(model, ds, options);
        if (run.wallMs < best.wallMs)
            best = std::move(run);
    }
    return best;
}

std::vector<E2eRecord>
runE2eSweep(uint32_t num_queries, uint32_t num_candidates, uint32_t reps)
{
    Dataset ds =
        makeCloneSearchDataset(DatasetId::RD_B, num_queries,
                               num_candidates);
    const uint32_t threads = ThreadPool::instance().threads();
    std::vector<E2eRecord> records;
    for (ModelId model : allModels()) {
        double dense_ms = 0.0;
        for (const auto &mode : kE2eModes) {
            FunctionalOptions options;
            options.dedup = mode.dedup;
            options.memo = mode.memo;
            FunctionalResult result =
                bestFunctionalRun(model, ds, options, reps);
            if (!mode.dedup && !mode.memo)
                dense_ms = result.msPerPair();
            E2eRecord rec;
            rec.model = modelConfig(model).name;
            rec.mode = mode.name;
            rec.threads = threads;
            rec.pairs = result.scores.size();
            rec.msPerPair = result.msPerPair();
            rec.speedupVsDense =
                rec.msPerPair > 0.0 ? dense_ms / rec.msPerPair : 0.0;
            rec.memoHits = result.memoHits;
            rec.memoMisses = result.memoMisses;
            records.push_back(std::move(rec));
        }
    }
    return records;
}

void
writeE2eJson(const std::vector<E2eRecord> &records,
             const std::string &path)
{
    FILE *out = path == "-" ? stdout : std::fopen(path.c_str(), "w");
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    std::fprintf(out, "[\n");
    for (size_t i = 0; i < records.size(); ++i) {
        const E2eRecord &r = records[i];
        std::fprintf(out,
                     "  {\"model\": \"%s\", \"mode\": \"%s\", "
                     "\"threads\": %" PRIu32 ", \"pairs\": %zu, "
                     "\"ms_per_pair\": %.3f, "
                     "\"speedup_vs_dense\": %.3f, "
                     "\"memo_hits\": %zu, \"memo_misses\": %zu}%s\n",
                     r.model.c_str(), r.mode.c_str(), r.threads,
                     r.pairs, r.msPerPair, r.speedupVsDense, r.memoHits,
                     r.memoMisses, i + 1 < records.size() ? "," : "");
    }
    std::fprintf(out, "]\n");
    if (out != stdout)
        std::fclose(out);
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    std::string out_path;
    bool e2e = false;
    uint32_t num_queries = 4;
    uint32_t num_candidates = 4;
    uint32_t reps = 2;
    std::vector<uint32_t> thread_counts = {1, 2, 4};
    double min_ms = 200.0;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for '%s'", arg.c_str());
            return argv[++i];
        };
        if (arg == "--out") {
            out_path = next();
        } else if (arg == "--e2e") {
            e2e = true;
        } else if (arg == "--queries") {
            num_queries =
                static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
        } else if (arg == "--candidates") {
            num_candidates =
                static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
        } else if (arg == "--reps") {
            reps = std::max<uint32_t>(
                1, static_cast<uint32_t>(
                       std::strtoul(next(), nullptr, 10)));
        } else if (arg == "--threads") {
            thread_counts.clear();
            const char *list = next();
            for (const char *p = list; *p;) {
                thread_counts.push_back(
                    static_cast<uint32_t>(std::strtoul(p, nullptr, 10)));
                p = std::strchr(p, ',');
                p = p ? p + 1 : "";
            }
            if (thread_counts.empty())
                fatal("empty --threads list");
        } else if (arg == "--min-ms") {
            min_ms = std::strtod(next(), nullptr);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--out FILE|-] [--threads LIST] "
                         "[--min-ms M]\n"
                         "       %s --e2e [--out FILE|-] "
                         "[--threads LIST] [--queries Q] "
                         "[--candidates C] [--reps R]\n",
                         argv[0], argv[0]);
            return 2;
        }
    }
    if (out_path.empty())
        out_path = e2e ? "BENCH_e2e.json" : "BENCH_kernels.json";

    if (e2e) {
        // The e2e sweep runs at one pool size — the last (largest by
        // convention) entry of --threads.
        ThreadPool::instance().setThreads(thread_counts.back());
        std::vector<E2eRecord> records =
            runE2eSweep(num_queries, num_candidates, reps);
        writeE2eJson(records, out_path);
        if (out_path != "-")
            std::printf("wrote %zu records to %s\n", records.size(),
                        out_path.c_str());
        return 0;
    }

    // Fixtures sized to the acceptance shapes: GEMM 256x256x256 and a
    // 256x256 similarity over 128-wide features.
    Rng rng(11);
    Matrix ga(256, 256), gb(256, 256);
    ga.fillXavier(rng);
    gb.fillXavier(rng);
    Matrix sx(256, 128), sy(256, 128);
    sx.fillXavier(rng);
    sy.fillXavier(rng);
    Matrix ef(4096, 64);
    ef.fillXavier(rng);

    std::vector<Record> records;
    ThreadPool &pool = ThreadPool::instance();

    pool.setThreads(1);
    records.push_back({"gemm_naive_256x256x256", 1,
                       timeKernel([&] { matmulNaive(ga, gb); }, min_ms)});
    records.push_back(
        {"similarity_nt_naive_256x256x128", 1,
         timeKernel([&] { matmulNTNaive(sx, sy); }, min_ms)});
    records.push_back(
        {"emf_tags_naive_4096x64", 1,
         timeKernel([&] { emfTagsNaive(ef, 0); }, min_ms)});

    for (uint32_t requested : thread_counts) {
        pool.setThreads(requested);
        // Record the resolved count: --threads 0 means "hardware/env
        // default", and the JSON should say what actually ran.
        const uint32_t t = pool.threads();
        records.push_back({"gemm_256x256x256", t,
                           timeKernel([&] { matmul(ga, gb); }, min_ms)});
        records.push_back(
            {"similarity_nt_256x256x128", t,
             timeKernel([&] { matmulNT(sx, sy); }, min_ms)});
        records.push_back(
            {"similarity_cosine_256x256x128", t,
             timeKernel(
                 [&] {
                     similarityMatrix(sx, sy, SimilarityKind::Cosine);
                 },
                 min_ms)});
        records.push_back(
            {"emf_tags_4096x64", t,
             timeKernel([&] { computeEmfTags(ef, 0); }, min_ms)});
    }

    writeJson(records, out_path);
    if (out_path != "-")
        std::printf("wrote %zu records to %s\n", records.size(),
                    out_path.c_str());
    return 0;
}
