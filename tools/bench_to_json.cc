/**
 * @file
 * bench_to_json — machine-readable kernel benchmark summary.
 *
 * The default (`--kernels`) mode times the parallel hot kernels (GEMM,
 * A*B^T similarity, cosine normalization, EMF tag hashing) at several
 * pool sizes, each at every available SIMD level (`"simd": "scalar"` /
 * `"avx2"` columns — the restructured scalar oracle vs the vectorized
 * kernels), plus the pre-parallel naive serial versions (`*_naive`,
 * `"simd": "naive"`) as a fixed baseline, and writes a JSON array of
 * {kernel, threads, simd, ns_per_iter} records so later PRs can track
 * the perf trajectory mechanically. It also records the joint-window
 * vs full-streaming similarity comparison on a clone-search-shaped
 * pair: those records carry `lines_est` (deterministic feature
 * cache-line-load estimate) and, when `perf_event_open` is permitted,
 * measured `llc_miss` / `l1d_miss` per call.
 *
 * Usage:
 *   bench_to_json [--kernels] [--out FILE] [--threads LIST]
 *                 [--min-ms M]
 *   bench_to_json --e2e [--out FILE] [--threads LIST] [--queries Q]
 *                 [--candidates C] [--reps R]
 *   bench_to_json --serving [--out FILE] [--threads LIST]
 *                 [--queries Q] [--candidates C] [--requests N]
 *                 [--load F]
 *   bench_to_json --retrieval [--out FILE] [--threads LIST]
 *                 [--queries Q] [--candidates C]
 *   bench_to_json --live [--out FILE] [--threads LIST]
 *                 [--queries Q] [--candidates C] [--requests N]
 *                 [--load F]
 *
 * `--live` measures serving under online corpus mutation: the cascade
 * SearchService (SimGNN, shortlist 64) over an AIDS corpus (default
 * 8 queries x 100000 candidates), driven open-loop at a calibrated
 * QPS while a seeded mutation stream inserts/removes corpus entries
 * at 0% / 1% / 10% of the request rate (epoch published every 2
 * mutations). Each request's scores are verified bit-identical to
 * the standalone exact oracle and recall@10 is judged against the
 * oracle top-10 *of that request's pinned epoch* — the live ids its
 * result declares. Records {mutate_rate, p50/p95/p99 ms,
 * recall_at_10, epochs, epochs_reclaimed} land in BENCH_live.json:
 * the p95/p99 delta across rates is the latency price of mutability,
 * and flat recall says pinned-epoch consistency holds under churn.
 *
 * Defaults: --out BENCH_kernels.json, --threads 1,2,4, --min-ms 200.
 * `--out -` writes to stdout.
 *
 * `--retrieval` runs the recall@10-vs-speedup sweep of the retrieval
 * cascade (src/retrieval) on an AIDS clone-search corpus (default
 * 16 queries x 100000 candidates): one exhaustive SimGNN pass over
 * the full corpus establishes the per-query oracle top-10 score
 * thresholds *and* the latency baseline, then each (shortlist,
 * tag-prune) cascade config is timed end to end (tag filter + coarse
 * shortlist + exact verify + top-k select). Recall is tie-aware — a
 * cascade top-10 slot counts when its exact score reaches the
 * oracle's 10th-best score, the honest reading when scores tie
 * bit-exactly — and every verified score is checked bit-identical to
 * the exhaustive pass before it is counted. Records land in
 * BENCH_retrieval.json.
 *
 * `--serving` drives the src/serve SearchService with the open-loop
 * Poisson load generator over the RD-B clone-search corpus (Q queries,
 * C candidates): for each model, the offered load is calibrated to
 * `--load` (default 0.6) of the measured *dense* capacity, then both
 * the dense and the dedup+memo service score the byte-identical
 * arrival schedule — each in the monolithic batch path (pipeline
 * depth 0) and, for the full runtime, again through the pipelined
 * engine (depth 2), so pipelined-vs-monolithic is one more equal-load
 * column. Records {model, mode, pipeline_depth, offered_qps,
 * achieved_qps, p50/p95/p99 ms, batch mean, cache hit rate, dedup
 * skip ratio, workspace_miss_rate} land in BENCH_serving.json — equal
 * load by construction, so "dedup+memo no slower" and "pipelining no
 * slower" are directly readable off the percentiles.
 *
 * `--e2e` switches to the end-to-end functional-inference sweep: for
 * each model, run `runFunctional` over a duplicate-heavy RD-B
 * clone-search dataset (Q queries x C candidates, default 4x4) in the
 * three elastic modes — dense, dedup, dedup+memo — at the *last*
 * thread count of `--threads`, best-of-R reps, and write
 * {model, mode, ms_per_pair, speedup_vs_dense, ...} records to
 * BENCH_e2e.json (default). The modes are bitwise-identical in output
 * (see tests/dedup_exec_test.cc); this records how much wall clock the
 * elastic paths save.
 */

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "accel/runner.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/simd.hh"
#include "emf/emf.hh"
#include "gmn/similarity.hh"
#include "gmn/window_sched.hh"
#include "graph/dataset.hh"
#include "gmn/model.hh"
#include "hash/xxhash.hh"
#include "obs/perf_counters.hh"
#include "tensor/workspace.hh"
#include "retrieval/retrieval.hh"
#include "serve/loadgen.hh"
#include "serve/service.hh"
#include "tensor/matrix.hh"

using namespace cegma;

namespace {

struct Record
{
    std::string kernel;
    uint32_t threads;
    std::string simd; ///< "naive", "scalar" or "avx2"
    double nsPerIter;

    // Locality records only (negative = not applicable / measured).
    double linesEst = -1.0; ///< estimated feature cache-line loads
    double llcMiss = -1.0;  ///< measured LLC misses per call
    double l1dMiss = -1.0;  ///< measured L1D read misses per call
};

/**
 * Wall-clock ns per call of `fn`, running it for at least `min_ms`
 * after one untimed warmup call.
 */
template <typename Fn>
double
timeKernel(Fn &&fn, double min_ms)
{
    using clock = std::chrono::steady_clock;
    fn(); // warmup: page in buffers, spin up the pool
    uint64_t iters = 0;
    auto start = clock::now();
    double elapsed_ms = 0.0;
    do {
        fn();
        ++iters;
        elapsed_ms = std::chrono::duration<double, std::milli>(
                         clock::now() - start)
                         .count();
    } while (elapsed_ms < min_ms);
    return elapsed_ms * 1e6 / static_cast<double>(iters);
}

// ---- Pre-parallel reference kernels (the seed implementations) ------

Matrix
matmulNaive(const Matrix &a, const Matrix &b)
{
    Matrix c(a.rows(), b.cols());
    for (size_t i = 0; i < a.rows(); ++i) {
        float *crow = c.row(i);
        for (size_t k = 0; k < a.cols(); ++k) {
            float aik = a.at(i, k);
            if (aik == 0.0f)
                continue;
            const float *brow = b.row(k);
            for (size_t j = 0; j < b.cols(); ++j)
                crow[j] += aik * brow[j];
        }
    }
    return c;
}

float
dotNaive(const float *a, const float *b, size_t n)
{
    float acc = 0.0f;
    for (size_t i = 0; i < n; ++i)
        acc += a[i] * b[i];
    return acc;
}

Matrix
matmulNTNaive(const Matrix &a, const Matrix &b)
{
    Matrix c(a.rows(), b.rows());
    for (size_t i = 0; i < a.rows(); ++i) {
        const float *arow = a.row(i);
        float *crow = c.row(i);
        for (size_t j = 0; j < b.rows(); ++j)
            crow[j] = dotNaive(arow, b.row(j), a.cols());
    }
    return c;
}

std::vector<uint32_t>
emfTagsNaive(const Matrix &features, uint32_t seed)
{
    std::vector<uint32_t> tags(features.rows());
    for (size_t v = 0; v < features.rows(); ++v) {
        tags[v] =
            hashFeatureVector(features.row(v), features.cols(), seed);
    }
    return tags;
}

void
writeJson(const std::vector<Record> &records, const std::string &path)
{
    FILE *out = path == "-" ? stdout : std::fopen(path.c_str(), "w");
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    std::fprintf(out, "[\n");
    for (size_t i = 0; i < records.size(); ++i) {
        const Record &r = records[i];
        std::fprintf(out,
                     "  {\"kernel\": \"%s\", \"threads\": %" PRIu32
                     ", \"simd\": \"%s\", \"ns_per_iter\": %.1f",
                     r.kernel.c_str(), r.threads, r.simd.c_str(),
                     r.nsPerIter);
        if (r.linesEst >= 0.0)
            std::fprintf(out, ", \"lines_est\": %.0f", r.linesEst);
        if (r.llcMiss >= 0.0) {
            std::fprintf(out,
                         ", \"llc_miss\": %.0f, \"l1d_miss\": %.0f",
                         r.llcMiss, r.l1dMiss);
        }
        std::fprintf(out, "}%s\n", i + 1 < records.size() ? "," : "");
    }
    std::fprintf(out, "]\n");
    if (out != stdout)
        std::fclose(out);
}

// ---- End-to-end functional inference sweep (--e2e) ------------------

struct E2eRecord
{
    std::string model;
    std::string mode;
    uint32_t threads;
    size_t pairs;
    double msPerPair;
    double speedupVsDense;
    size_t memoHits;
    size_t memoMisses;
};

/** The three elastic modes, in cheap-to-expensive savings order. */
const struct
{
    const char *name;
    bool dedup;
    bool memo;
} kE2eModes[] = {
    {"dense", false, false},
    {"dedup", true, false},
    {"dedup+memo", true, true},
};

/** Best-of-`reps` ms/pair of `runFunctional` for one (model, mode). */
FunctionalResult
bestFunctionalRun(ModelId model, const Dataset &ds,
                  const FunctionalOptions &options, uint32_t reps)
{
    FunctionalResult best = runFunctional(model, ds, options);
    for (uint32_t r = 1; r < reps; ++r) {
        FunctionalResult run = runFunctional(model, ds, options);
        if (run.wallMs < best.wallMs)
            best = std::move(run);
    }
    return best;
}

std::vector<E2eRecord>
runE2eSweep(uint32_t num_queries, uint32_t num_candidates, uint32_t reps)
{
    Dataset ds =
        makeCloneSearchDataset(DatasetId::RD_B, num_queries,
                               num_candidates);
    const uint32_t threads = ThreadPool::instance().threads();
    std::vector<E2eRecord> records;
    for (ModelId model : allModels()) {
        double dense_ms = 0.0;
        for (const auto &mode : kE2eModes) {
            FunctionalOptions options;
            options.dedup = mode.dedup;
            options.memo = mode.memo;
            FunctionalResult result =
                bestFunctionalRun(model, ds, options, reps);
            if (!mode.dedup && !mode.memo)
                dense_ms = result.msPerPair();
            E2eRecord rec;
            rec.model = modelConfig(model).name;
            rec.mode = mode.name;
            rec.threads = threads;
            rec.pairs = result.scores.size();
            rec.msPerPair = result.msPerPair();
            rec.speedupVsDense =
                rec.msPerPair > 0.0 ? dense_ms / rec.msPerPair : 0.0;
            rec.memoHits = result.memoHits;
            rec.memoMisses = result.memoMisses;
            records.push_back(std::move(rec));
        }
    }
    return records;
}

void
writeE2eJson(const std::vector<E2eRecord> &records,
             const std::string &path)
{
    FILE *out = path == "-" ? stdout : std::fopen(path.c_str(), "w");
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    std::fprintf(out, "[\n");
    for (size_t i = 0; i < records.size(); ++i) {
        const E2eRecord &r = records[i];
        std::fprintf(out,
                     "  {\"model\": \"%s\", \"mode\": \"%s\", "
                     "\"threads\": %" PRIu32 ", \"pairs\": %zu, "
                     "\"ms_per_pair\": %.3f, "
                     "\"speedup_vs_dense\": %.3f, "
                     "\"memo_hits\": %zu, \"memo_misses\": %zu}%s\n",
                     r.model.c_str(), r.mode.c_str(), r.threads,
                     r.pairs, r.msPerPair, r.speedupVsDense, r.memoHits,
                     r.memoMisses, i + 1 < records.size() ? "," : "");
    }
    std::fprintf(out, "]\n");
    if (out != stdout)
        std::fclose(out);
}

// ---- Serving latency/throughput sweep (--serving) -------------------

struct ServingRecord
{
    std::string model;
    std::string mode;
    uint32_t threads;
    uint32_t requests;
    double offeredQps;
    double achievedQps;
    double p50Ms;
    double p95Ms;
    double p99Ms;
    double batchMean;
    double cacheHitRate;
    double dedupSkipRatio;

    // Overload-robustness counters (nonzero only when the sweep is
    // run with deadlines/shedding/faults enabled).
    uint64_t expired;
    uint64_t shed;
    uint64_t retries;

    // Per-stage latency breakdown: each stage's share of the total
    // accounted time (queue wait + embed + match + dedup + head +
    // memo lookups). Stage times are thread-time sums, so the shares
    // describe where the compute went, not wall-clock fractions.
    double embedShare;
    double matchShare;
    double dedupShare;
    double headShare;
    double memoShare;
    double queueShare;

    // Rolling-window telemetry at the end of the run: the 1-minute
    // p99 (gauge `serve.win1m.p99_us`) and the 1-minute SLO burn rate
    // against a 2x-dense-request-time target at 99% objective
    // (`serve.slo.burn.win1m`; 1.0 = burning budget exactly at the
    // allowed rate).
    double win1mP99Ms;
    double sloBurn1m;

    // Pipelined execution (PR-10): the engine's queue depth (0 = the
    // monolithic batch path) and the workspace pool's miss rate over
    // this run — flat-after-warm-up shows up as a near-zero rate.
    uint32_t pipelineDepth;
    double workspaceMissRate;
};

/** The numeric value of registry metric `name`, or 0 if absent. */
double
registryNumber(const obs::RegistrySnapshot &snap,
               const std::string &name)
{
    for (const obs::MetricValue &m : snap.metrics) {
        if (m.name != name)
            continue;
        switch (m.kind) {
        case obs::MetricValue::Kind::Counter:
            return static_cast<double>(m.counter);
        case obs::MetricValue::Kind::Gauge:
            return static_cast<double>(m.gauge);
        case obs::MetricValue::Kind::FloatGauge:
            return m.fgauge;
        case obs::MetricValue::Kind::Histogram:
            return m.hist.mean;
        }
    }
    return 0.0;
}

/** The stage shares of `snap`, normalized over the accounted total. */
void
fillStageShares(const MetricsSnapshot &snap, ServingRecord &rec)
{
    double total = snap.stageQueueMs + snap.stageEmbedMs +
                   snap.stageMatchMs + snap.stageDedupMs +
                   snap.stageHeadMs + snap.stageMemoMs;
    auto share = [total](double ms) {
        return total > 0.0 ? ms / total : 0.0;
    };
    rec.embedShare = share(snap.stageEmbedMs);
    rec.matchShare = share(snap.stageMatchMs);
    rec.dedupShare = share(snap.stageDedupMs);
    rec.headShare = share(snap.stageHeadMs);
    rec.memoShare = share(snap.stageMemoMs);
    rec.queueShare = share(snap.stageQueueMs);
}

/** The serving comparison: baseline vs the full elastic runtime. */
const struct
{
    const char *name;
    bool dedup;
    bool memo;
    uint32_t pipelineDepth; ///< 0 = monolithic batch path
} kServingModes[] = {
    {"dense", false, false, 0},
    {"dedup+memo", true, true, 0},
    {"dedup+memo+pipeline", true, true, 2},
};

std::vector<ServingRecord>
runServingSweep(uint32_t num_queries, uint32_t num_candidates,
                uint32_t requests, double load_fraction)
{
    CloneSearchCorpus corpus = makeCloneSearchCorpus(
        DatasetId::RD_B, num_queries, num_candidates);
    const uint32_t threads = ThreadPool::instance().threads();
    std::vector<ServingRecord> records;
    for (ModelId model : allModels()) {
        // Calibrate the offered load from the *dense* per-request cost
        // (one query scanned across the candidate database) so that
        // the schedule is feasible for the baseline; both modes then
        // face the byte-identical arrival times.
        Dataset probe = makeCloneSearchDataset(DatasetId::RD_B, 1,
                                               num_candidates);
        FunctionalResult dense_probe =
            runFunctional(model, probe, FunctionalOptions{});
        double request_ms =
            dense_probe.msPerPair() *
            static_cast<double>(num_candidates);
        double offered_qps =
            request_ms > 0.0 ? load_fraction * 1e3 / request_ms : 1.0;

        for (const auto &mode : kServingModes) {
            ServeConfig config;
            config.model = model;
            config.dedup = mode.dedup;
            config.memo = mode.memo;
            config.maxBatch = 8;
            config.flushMicros = 2000;
            // Exercise the telemetry plane under the benchmarked load:
            // per-request stage attribution on, and an SLO of 2x the
            // dense per-request service time at 99%. Queueing pushes
            // the dense baseline past that target routinely, so its
            // burn rate is large while dedup+memo holds near zero —
            // the SLO readout *is* the elastic-runtime argument.
            config.attribution = true;
            config.slo.targetMs = 2.0 * request_ms;
            config.slo.objective = 0.99;
            config.pipelineDepth = mode.pipelineDepth;
            // The pool is process-global: bracket the run so the miss
            // rate is this run's own, not the sweep's cumulative one.
            WorkspaceStats ws_before = WorkspacePool::instance().stats();
            SearchService service(config, corpus.candidates);
            LoadGenResult run = runOpenLoop(
                service, corpus.queries, requests, offered_qps, 11);
            service.shutdown();
            // Post-shutdown the window gauges are frozen at their
            // end-of-run values, so this snapshot reads the final
            // rolling 1-minute state.
            obs::RegistrySnapshot reg = service.registry().snapshot();
            if (run.errors > 0)
                fatal("serving sweep: %zu rejected requests",
                      static_cast<size_t>(run.errors));

            ServingRecord rec;
            rec.model = modelConfig(model).name;
            rec.mode = mode.name;
            rec.threads = threads;
            rec.requests = requests;
            rec.offeredQps = offered_qps;
            rec.achievedQps = run.achievedQps;
            rec.p50Ms = run.metrics.latencyP50Ms;
            rec.p95Ms = run.metrics.latencyP95Ms;
            rec.p99Ms = run.metrics.latencyP99Ms;
            rec.batchMean = run.metrics.batchMean;
            rec.cacheHitRate = run.metrics.cacheHitRate;
            rec.dedupSkipRatio = run.metrics.dedupSkipRatio;
            rec.expired = run.metrics.expired;
            rec.shed = run.metrics.shed;
            rec.retries = run.metrics.retries;
            fillStageShares(run.metrics, rec);
            rec.win1mP99Ms =
                registryNumber(reg, "serve.win1m.p99_us") / 1e3;
            rec.sloBurn1m = registryNumber(reg, "serve.slo.burn.win1m");
            rec.pipelineDepth = mode.pipelineDepth;
            WorkspaceStats ws_after = WorkspacePool::instance().stats();
            double ws_hits = static_cast<double>(ws_after.hits -
                                                 ws_before.hits);
            double ws_misses = static_cast<double>(ws_after.misses -
                                                   ws_before.misses);
            rec.workspaceMissRate =
                ws_hits + ws_misses > 0.0
                    ? ws_misses / (ws_hits + ws_misses)
                    : 0.0;
            records.push_back(std::move(rec));
        }
    }
    return records;
}

void
writeServingJson(const std::vector<ServingRecord> &records,
                 const std::string &path)
{
    FILE *out = path == "-" ? stdout : std::fopen(path.c_str(), "w");
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    std::fprintf(out, "[\n");
    for (size_t i = 0; i < records.size(); ++i) {
        const ServingRecord &r = records[i];
        std::fprintf(out,
                     "  {\"model\": \"%s\", \"mode\": \"%s\", "
                     "\"threads\": %" PRIu32 ", \"requests\": %" PRIu32
                     ", \"offered_qps\": %.3f, "
                     "\"achieved_qps\": %.3f, \"p50_ms\": %.3f, "
                     "\"p95_ms\": %.3f, \"p99_ms\": %.3f, "
                     "\"batch_mean\": %.2f, \"cache_hit_rate\": %.3f, "
                     "\"dedup_skip_ratio\": %.3f, "
                     "\"expired\": %" PRIu64 ", \"shed\": %" PRIu64
                     ", \"retries\": %" PRIu64 ", "
                     "\"embed_share\": %.3f, \"match_share\": %.3f, "
                     "\"dedup_share\": %.3f, \"head_share\": %.3f, "
                     "\"memo_share\": %.3f, \"queue_share\": %.3f, "
                     "\"win1m_p99_ms\": %.3f, "
                     "\"slo_burn_1m\": %.3f, "
                     "\"pipeline_depth\": %" PRIu32 ", "
                     "\"workspace_miss_rate\": %.4f}%s\n",
                     r.model.c_str(), r.mode.c_str(), r.threads,
                     r.requests, r.offeredQps, r.achievedQps, r.p50Ms,
                     r.p95Ms, r.p99Ms, r.batchMean, r.cacheHitRate,
                     r.dedupSkipRatio, r.expired, r.shed, r.retries,
                     r.embedShare, r.matchShare,
                     r.dedupShare, r.headShare, r.memoShare,
                     r.queueShare, r.win1mP99Ms, r.sloBurn1m,
                     r.pipelineDepth, r.workspaceMissRate,
                     i + 1 < records.size() ? "," : "");
    }
    std::fprintf(out, "]\n");
    if (out != stdout)
        std::fclose(out);
}

// ---- Retrieval cascade recall/speedup sweep (--retrieval) -----------

struct RetrievalRecord
{
    std::string model;
    std::string mode; ///< "exhaustive" or "cascade"
    uint32_t threads;
    uint32_t queries;
    uint32_t candidates;
    size_t shortlist; ///< exact-verify budget (0 = whole corpus)
    double tagPrune;
    double recallAt10;
    double msPerQuery;
    double speedupVsExhaustive;
    double avgSurvivors;   ///< mean candidates past the tag filter
    double avgShortlisted; ///< mean candidates reaching exact verify
    double indexBuildMs;   ///< one-time corpus-side build (cascade rows)
};

/**
 * The recall@10-vs-speedup sweep: one exhaustive oracle pass, then
 * every (shortlist, tag-prune) cascade config against it. SimGNN only —
 * it is the model with a decomposable head, so its cascade runs the
 * model-aware coarse stage the acceptance numbers are about.
 */
std::vector<RetrievalRecord>
runRetrievalSweep(uint32_t num_queries, uint32_t num_candidates)
{
    const size_t K = 10;
    using clock = std::chrono::steady_clock;
    CloneSearchCorpus corpus = makeCloneSearchCorpus(
        DatasetId::AIDS, num_queries, num_candidates);
    std::unique_ptr<GmnModel> model = makeModel(ModelId::SimGnn);
    const uint32_t threads = ThreadPool::instance().threads();

    // Exhaustive oracle: every (query, candidate) exact score, timed
    // as the latency baseline and kept as ground truth for every
    // cascade config's recall and bit-identity check.
    std::vector<std::vector<double>> exact(num_queries);
    auto ex_start = clock::now();
    for (uint32_t q = 0; q < num_queries; ++q) {
        exact[q].resize(num_candidates);
        parallelFor(0, num_candidates, 8, [&](size_t a, size_t b) {
            for (size_t c = a; c < b; ++c)
                exact[q][c] = model->score(GraphPairView(
                    corpus.candidates[c], corpus.queries[q]));
        });
    }
    const double exhaustive_ms =
        std::chrono::duration<double, std::milli>(clock::now() -
                                                  ex_start)
            .count() /
        static_cast<double>(num_queries);

    // Tie-aware hit threshold per query: the oracle's 10th-best exact
    // score. Any candidate reaching it is as correct a top-10 member
    // as the oracle's own pick — bit-exact score ties are common on
    // this corpus, so id-matching would reject correct answers at
    // random.
    std::vector<double> kth(num_queries);
    for (uint32_t q = 0; q < num_queries; ++q) {
        std::vector<double> sorted = exact[q];
        std::nth_element(sorted.begin(), sorted.begin() + (K - 1),
                         sorted.end(), std::greater<>());
        kth[q] = sorted[K - 1];
    }

    std::vector<RetrievalRecord> records;
    RetrievalRecord base;
    base.model = modelConfig(ModelId::SimGnn).name;
    base.mode = "exhaustive";
    base.threads = threads;
    base.queries = num_queries;
    base.candidates = num_candidates;
    base.shortlist = 0;
    base.tagPrune = 0.0;
    base.recallAt10 = 1.0;
    base.msPerQuery = exhaustive_ms;
    base.speedupVsExhaustive = 1.0;
    base.avgSurvivors = static_cast<double>(num_candidates);
    base.avgShortlisted = static_cast<double>(num_candidates);
    base.indexBuildMs = 0.0;
    records.push_back(base);

    RetrievalConfig cfg;
    cfg.mode = RetrievalMode::Cascade;
    RetrievalIndex index;
    auto build_start = clock::now();
    index.build(corpus.candidates, *model, cfg);
    const double build_ms =
        std::chrono::duration<double, std::milli>(clock::now() -
                                                  build_start)
            .count();

    const size_t kShortlists[] = {16, 64, 256, 1024};
    const double kTagPrunes[] = {0.0, 0.25};
    for (double tag_prune : kTagPrunes) {
        for (size_t shortlist : kShortlists) {
            index.setQueryKnobs(shortlist, tag_prune);
            size_t hits = 0;
            double survivors = 0.0, shortlisted = 0.0;
            double cascade_ms = 0.0;
            for (uint32_t q = 0; q < num_queries; ++q) {
                auto t0 = clock::now();
                RetrievalStages st;
                std::vector<uint32_t> list = index.shortlist(
                    corpus.queries[q], *model, &st);
                std::vector<double> scores(list.size());
                parallelFor(0, list.size(), 8,
                            [&](size_t a, size_t b) {
                                for (size_t i = a; i < b; ++i)
                                    scores[i] = model->score(
                                        GraphPairView(
                                            corpus.candidates[list[i]],
                                            corpus.queries[q]));
                            });
                std::vector<double> top = scores;
                if (top.size() > K) {
                    std::nth_element(top.begin(), top.begin() + (K - 1),
                                     top.end(), std::greater<>());
                    top.resize(K);
                }
                cascade_ms +=
                    std::chrono::duration<double, std::milli>(
                        clock::now() - t0)
                        .count();

                // Outside the timer: the bit-identity contract and the
                // tie-aware recall bookkeeping.
                for (size_t i = 0; i < list.size(); ++i) {
                    if (scores[i] != exact[q][list[i]])
                        fatal("cascade score for candidate %" PRIu32
                              " differs from exhaustive",
                              list[i]);
                }
                for (double s : top)
                    if (s >= kth[q])
                        ++hits;
                survivors += static_cast<double>(st.survivors);
                shortlisted += static_cast<double>(st.shortlisted);
            }
            RetrievalRecord rec;
            rec.model = base.model;
            rec.mode = "cascade";
            rec.threads = threads;
            rec.queries = num_queries;
            rec.candidates = num_candidates;
            rec.shortlist = shortlist;
            rec.tagPrune = tag_prune;
            rec.recallAt10 =
                static_cast<double>(hits) /
                static_cast<double>(num_queries * K);
            rec.msPerQuery =
                cascade_ms / static_cast<double>(num_queries);
            rec.speedupVsExhaustive =
                rec.msPerQuery > 0.0 ? exhaustive_ms / rec.msPerQuery
                                     : 0.0;
            rec.avgSurvivors =
                survivors / static_cast<double>(num_queries);
            rec.avgShortlisted =
                shortlisted / static_cast<double>(num_queries);
            rec.indexBuildMs = build_ms;
            records.push_back(std::move(rec));
        }
    }
    return records;
}

void
writeRetrievalJson(const std::vector<RetrievalRecord> &records,
                   const std::string &path)
{
    FILE *out = path == "-" ? stdout : std::fopen(path.c_str(), "w");
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    std::fprintf(out, "[\n");
    for (size_t i = 0; i < records.size(); ++i) {
        const RetrievalRecord &r = records[i];
        std::fprintf(
            out,
            "  {\"model\": \"%s\", \"mode\": \"%s\", "
            "\"threads\": %" PRIu32 ", \"queries\": %" PRIu32
            ", \"candidates\": %" PRIu32 ", \"shortlist\": %zu, "
            "\"tag_prune\": %.2f, \"recall_at_10\": %.4f, "
            "\"ms_per_query\": %.2f, "
            "\"speedup_vs_exhaustive\": %.2f, "
            "\"avg_survivors\": %.0f, \"avg_shortlisted\": %.0f, "
            "\"index_build_ms\": %.1f}%s\n",
            r.model.c_str(), r.mode.c_str(), r.threads, r.queries,
            r.candidates, r.shortlist, r.tagPrune, r.recallAt10,
            r.msPerQuery, r.speedupVsExhaustive, r.avgSurvivors,
            r.avgShortlisted, r.indexBuildMs,
            i + 1 < records.size() ? "," : "");
    }
    std::fprintf(out, "]\n");
    if (out != stdout)
        std::fclose(out);
}

// ---- Live-corpus mutation sweep (--live) ----------------------------

struct LiveRecord
{
    std::string model;
    uint32_t threads;
    uint32_t queries;
    uint32_t candidates;
    uint32_t requests;
    double mutateRate; ///< mutations per query (fraction of QPS)
    uint64_t inserts;
    uint64_t removes;
    uint64_t epochs;
    uint64_t epochsReclaimed;
    double offeredQps;
    double p50Ms;
    double p95Ms;
    double p99Ms;
    double recallAt10;
};

/**
 * Serving latency and recall@10 under live mutation: the cascade
 * service (SimGNN, shortlist 64) over an AIDS corpus, driven open-loop
 * at a calibrated QPS while 0% / 1% / 10% of requests carry corpus
 * mutations. Every returned score is checked bit-identical to the
 * standalone exact score — which is epoch-independent — and recall is
 * judged per request against the oracle top-10 of *that request's
 * epoch* (its result carries the pinned epoch's live ids), tie-aware
 * like the --retrieval sweep. Mutation cost shows up honestly: epoch
 * publication and descriptor computation ride the arrival thread and
 * the postings lock, so the p95/p99 delta across rates is the price
 * of staying online.
 */
std::vector<LiveRecord>
runLiveSweep(uint32_t num_queries, uint32_t num_candidates,
             uint32_t requests, double load_fraction)
{
    const size_t K = 10;
    using clock = std::chrono::steady_clock;
    CloneSearchCorpus corpus = makeCloneSearchCorpus(
        DatasetId::AIDS, num_queries, num_candidates);
    std::unique_ptr<GmnModel> oracle_model = makeModel(ModelId::SimGnn);
    const uint32_t threads = ThreadPool::instance().threads();
    const double kRates[] = {0.0, 0.01, 0.10};

    // One shared insert pool, sized for the highest rate — lower
    // rates draw a prefix, so the inserted graphs are comparable
    // across rates.
    uint32_t pool_size =
        static_cast<uint32_t>(kRates[2] * requests) + 4;
    MutationPool pool =
        makeMutationPool(DatasetId::AIDS, pool_size, 7);

    // Exact (query, candidate) scores are epoch-independent, so ONE
    // oracle matrix over bootstrap + pool graphs serves every epoch
    // of every rate: the oracle top-10 at epoch e is just the top-10
    // over that epoch's live id set.
    std::vector<const Graph *> col_graph;
    std::unordered_map<uint64_t, size_t> col_of;
    for (size_t c = 0; c < corpus.candidates.size(); ++c) {
        col_of[corpus.candidateIds[c]] = col_graph.size();
        col_graph.push_back(&corpus.candidates[c]);
    }
    for (size_t p = 0; p < pool.graphs.size(); ++p) {
        col_of[pool.ids[p]] = col_graph.size();
        col_graph.push_back(&pool.graphs[p]);
    }
    std::vector<std::vector<double>> exact(num_queries);
    for (uint32_t q = 0; q < num_queries; ++q) {
        exact[q].resize(col_graph.size());
        parallelFor(0, col_graph.size(), 8, [&](size_t a, size_t b) {
            for (size_t c = a; c < b; ++c)
                exact[q][c] = oracle_model->score(GraphPairView(
                    *col_graph[c], corpus.queries[q]));
        });
    }

    double offered_qps = 0.0; // calibrated on the first service
    std::vector<LiveRecord> records;
    for (double rate : kRates) {
        ServeConfig config;
        config.model = ModelId::SimGnn;
        config.maxBatch = 8;
        config.flushMicros = 2000;
        config.topK = static_cast<uint32_t>(K);
        config.retrieval.mode = RetrievalMode::Cascade;
        config.retrieval.shortlist = 64;
        SearchService service(config, corpus.candidates,
                              corpus.candidateIds);

        if (offered_qps == 0.0) {
            // Calibrate once from the solo request latency, so every
            // rate faces the byte-identical arrival schedule.
            auto t0 = clock::now();
            for (uint32_t w = 0; w < 2; ++w)
                service.submit(corpus.queries[w % num_queries]).get();
            double solo_sec =
                std::chrono::duration<double>(clock::now() - t0)
                    .count() /
                2.0;
            offered_qps =
                solo_sec > 0.0 ? load_fraction / solo_sec : 1.0;
        }

        MutationMix mix;
        mix.perQuery = rate;
        mix.publishBatch = 2;
        MutationPlan plan = planMutations(corpus.candidateIds, pool,
                                          requests, mix, 23);

        // Open-loop drive with the mutation stream inline, futures
        // kept — recall needs each request's own (epoch, ids, topK).
        Rng rng(11);
        std::vector<double> arrival_sec(requests);
        double t = 0.0;
        for (uint32_t i = 0; i < requests; ++i) {
            t += -std::log1p(-rng.nextDouble()) / offered_qps;
            arrival_sec[i] = t;
        }
        std::vector<std::future<QueryResult>> futures;
        futures.reserve(requests);
        auto start = clock::now();
        for (uint32_t i = 0; i < requests; ++i) {
            auto when =
                start + std::chrono::duration_cast<clock::duration>(
                            std::chrono::duration<double>(
                                arrival_sec[i]));
            std::this_thread::sleep_until(when);
            for (const MutationOp &op : plan.before[i]) {
                bool ok = op.isInsert
                              ? service.insert(
                                    op.id, pool.graphs[op.poolIndex])
                              : service.remove(op.id);
                if (!ok)
                    fatal("live sweep: planned mutation refused");
            }
            if (plan.flushBefore[i])
                service.flushMutations();
            futures.push_back(
                service.submit(corpus.queries[i % num_queries]));
        }
        service.flushMutations();

        // Reap: latency percentiles over exactly the timed requests,
        // recall + bit-identity against the per-epoch oracle.
        std::vector<double> total_ms;
        total_ms.reserve(requests);
        size_t hits = 0;
        for (uint32_t i = 0; i < requests; ++i) {
            QueryResult result = futures[i].get();
            total_ms.push_back(result.totalMs);
            uint32_t q = i % num_queries;
            const std::vector<uint64_t> &ids = *result.ids;
            // Oracle top-10 of THIS request's epoch: kth-best exact
            // score over the live id set the result declares.
            std::vector<double> live_scores(ids.size());
            for (size_t c = 0; c < ids.size(); ++c)
                live_scores[c] = exact[q][col_of.at(ids[c])];
            size_t keep = std::min(K, live_scores.size());
            std::vector<double> sorted = live_scores;
            std::nth_element(sorted.begin(),
                             sorted.begin() +
                                 static_cast<ptrdiff_t>(keep - 1),
                             sorted.end(), std::greater<>());
            double kth = sorted[keep - 1];
            for (const SearchHit &hit : result.topK) {
                if (hit.score != live_scores[hit.candidate])
                    fatal("live sweep: served score differs from the "
                          "oracle at epoch %" PRIu64,
                          result.epoch);
                if (hit.score >= kth)
                    ++hits;
            }
        }
        std::sort(total_ms.begin(), total_ms.end());
        auto pct = [&](double p) {
            size_t idx = static_cast<size_t>(
                p * static_cast<double>(total_ms.size() - 1));
            return total_ms[idx];
        };
        MetricsSnapshot snap = service.metrics();
        service.shutdown();

        LiveRecord rec;
        rec.model = modelConfig(ModelId::SimGnn).name;
        rec.threads = threads;
        rec.queries = num_queries;
        rec.candidates = num_candidates;
        rec.requests = requests;
        rec.mutateRate = rate;
        rec.inserts = snap.corpusInserts;
        rec.removes = snap.corpusRemoves;
        rec.epochs = snap.corpusEpoch;
        rec.epochsReclaimed = snap.corpusEpochsReclaimed;
        rec.offeredQps = offered_qps;
        rec.p50Ms = pct(0.50);
        rec.p95Ms = pct(0.95);
        rec.p99Ms = pct(0.99);
        rec.recallAt10 = static_cast<double>(hits) /
                         static_cast<double>(requests * K);
        records.push_back(std::move(rec));
    }
    return records;
}

void
writeLiveJson(const std::vector<LiveRecord> &records,
              const std::string &path)
{
    FILE *out = path == "-" ? stdout : std::fopen(path.c_str(), "w");
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    std::fprintf(out, "[\n");
    for (size_t i = 0; i < records.size(); ++i) {
        const LiveRecord &r = records[i];
        std::fprintf(
            out,
            "  {\"model\": \"%s\", \"threads\": %" PRIu32
            ", \"queries\": %" PRIu32 ", \"candidates\": %" PRIu32
            ", \"requests\": %" PRIu32 ", \"mutate_rate\": %.2f, "
            "\"inserts\": %" PRIu64 ", \"removes\": %" PRIu64
            ", \"epochs\": %" PRIu64 ", \"epochs_reclaimed\": %" PRIu64
            ", \"offered_qps\": %.3f, \"p50_ms\": %.3f, "
            "\"p95_ms\": %.3f, \"p99_ms\": %.3f, "
            "\"recall_at_10\": %.4f}%s\n",
            r.model.c_str(), r.threads, r.queries, r.candidates,
            r.requests, r.mutateRate, r.inserts, r.removes, r.epochs,
            r.epochsReclaimed, r.offeredQps, r.p50Ms, r.p95Ms, r.p99Ms,
            r.recallAt10, i + 1 < records.size() ? "," : "");
    }
    std::fprintf(out, "]\n");
    if (out != stdout)
        std::fclose(out);
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    std::string out_path;
    bool e2e = false;
    bool serving = false;
    bool retrieval = false;
    bool live = false;
    uint32_t num_queries = 4;
    uint32_t num_candidates = 4;
    bool queries_set = false;
    bool candidates_set = false;
    uint32_t reps = 2;
    uint32_t requests = 48;
    bool requests_set = false;
    double load_fraction = 0.6;
    std::vector<uint32_t> thread_counts = {1, 2, 4};
    double min_ms = 200.0;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for '%s'", arg.c_str());
            return argv[++i];
        };
        if (arg == "--out") {
            out_path = next();
        } else if (arg == "--kernels") {
            // Default mode; accepted explicitly for symmetry with
            // --e2e / --serving.
        } else if (arg == "--e2e") {
            e2e = true;
        } else if (arg == "--serving") {
            serving = true;
        } else if (arg == "--retrieval") {
            retrieval = true;
        } else if (arg == "--live") {
            live = true;
        } else if (arg == "--requests") {
            requests = std::max<uint32_t>(
                1, static_cast<uint32_t>(
                       std::strtoul(next(), nullptr, 10)));
            requests_set = true;
        } else if (arg == "--load") {
            load_fraction = std::strtod(next(), nullptr);
        } else if (arg == "--queries") {
            num_queries =
                static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
            queries_set = true;
        } else if (arg == "--candidates") {
            num_candidates =
                static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
            candidates_set = true;
        } else if (arg == "--reps") {
            reps = std::max<uint32_t>(
                1, static_cast<uint32_t>(
                       std::strtoul(next(), nullptr, 10)));
        } else if (arg == "--threads") {
            thread_counts.clear();
            const char *list = next();
            for (const char *p = list; *p;) {
                thread_counts.push_back(
                    static_cast<uint32_t>(std::strtoul(p, nullptr, 10)));
                p = std::strchr(p, ',');
                p = p ? p + 1 : "";
            }
            if (thread_counts.empty())
                fatal("empty --threads list");
        } else if (arg == "--min-ms") {
            min_ms = std::strtod(next(), nullptr);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--kernels] [--out FILE|-] "
                         "[--threads LIST] [--min-ms M]\n"
                         "       %s --e2e [--out FILE|-] "
                         "[--threads LIST] [--queries Q] "
                         "[--candidates C] [--reps R]\n"
                         "       %s --serving [--out FILE|-] "
                         "[--threads LIST] [--queries Q] "
                         "[--candidates C] [--requests N] [--load F]\n"
                         "       %s --retrieval [--out FILE|-] "
                         "[--threads LIST] [--queries Q] "
                         "[--candidates C]\n",
                         argv[0], argv[0], argv[0], argv[0]);
            return 2;
        }
    }
    if (out_path.empty()) {
        out_path = live      ? "BENCH_live.json"
                   : retrieval ? "BENCH_retrieval.json"
                   : serving ? "BENCH_serving.json"
                   : e2e     ? "BENCH_e2e.json"
                             : "BENCH_kernels.json";
    }

    if (live) {
        // Sized like the --retrieval acceptance sweep: a 10^5 AIDS
        // corpus, fewer queries (the oracle matrix is per query).
        if (!queries_set)
            num_queries = 8;
        if (!candidates_set)
            num_candidates = 100000;
        if (!requests_set)
            requests = 200; // 1% of QPS must round to >= 1 mutation
        ThreadPool::instance().setThreads(thread_counts.back());
        std::vector<LiveRecord> records = runLiveSweep(
            num_queries, num_candidates, requests, load_fraction);
        writeLiveJson(records, out_path);
        if (out_path != "-")
            std::printf("wrote %zu records to %s\n", records.size(),
                        out_path.c_str());
        return 0;
    }

    if (retrieval) {
        // The retrieval sweep's corpus is sized for the acceptance
        // numbers (10^5 candidates) unless overridden.
        if (!queries_set)
            num_queries = 16;
        if (!candidates_set)
            num_candidates = 100000;
        ThreadPool::instance().setThreads(thread_counts.back());
        std::vector<RetrievalRecord> records =
            runRetrievalSweep(num_queries, num_candidates);
        writeRetrievalJson(records, out_path);
        if (out_path != "-")
            std::printf("wrote %zu records to %s\n", records.size(),
                        out_path.c_str());
        return 0;
    }

    if (serving) {
        ThreadPool::instance().setThreads(thread_counts.back());
        std::vector<ServingRecord> records = runServingSweep(
            num_queries, num_candidates, requests, load_fraction);
        writeServingJson(records, out_path);
        if (out_path != "-")
            std::printf("wrote %zu records to %s\n", records.size(),
                        out_path.c_str());
        return 0;
    }

    if (e2e) {
        // The e2e sweep runs at one pool size — the last (largest by
        // convention) entry of --threads.
        ThreadPool::instance().setThreads(thread_counts.back());
        std::vector<E2eRecord> records =
            runE2eSweep(num_queries, num_candidates, reps);
        writeE2eJson(records, out_path);
        if (out_path != "-")
            std::printf("wrote %zu records to %s\n", records.size(),
                        out_path.c_str());
        return 0;
    }

    // Fixtures sized to the acceptance shapes: GEMM 256x256x256 and a
    // 256x256 similarity over 128-wide features.
    Rng rng(11);
    Matrix ga(256, 256), gb(256, 256);
    ga.fillXavier(rng);
    gb.fillXavier(rng);
    Matrix sx(256, 128), sy(256, 128);
    sx.fillXavier(rng);
    sy.fillXavier(rng);
    Matrix ef(4096, 64);
    ef.fillXavier(rng);

    std::vector<Record> records;
    ThreadPool &pool = ThreadPool::instance();

    pool.setThreads(1);
    records.push_back({"gemm_naive_256x256x256", 1, "naive",
                       timeKernel([&] { matmulNaive(ga, gb); }, min_ms)});
    records.push_back(
        {"similarity_nt_naive_256x256x128", 1, "naive",
         timeKernel([&] { matmulNTNaive(sx, sy); }, min_ms)});
    records.push_back(
        {"emf_tags_naive_4096x64", 1, "naive",
         timeKernel([&] { emfTagsNaive(ef, 0); }, min_ms)});

    // The dispatched kernels, each thread count x each SIMD level the
    // machine supports — scalar is always present (it is the test
    // oracle), so the avx2/scalar ratio per row pair is the
    // vectorization speedup at that pool size.
    std::vector<SimdLevel> levels = {SimdLevel::Scalar};
    if (cpuSupportsAvx2())
        levels.push_back(SimdLevel::Avx2);

    for (uint32_t requested : thread_counts) {
        pool.setThreads(requested);
        // Record the resolved count: --threads 0 means "hardware/env
        // default", and the JSON should say what actually ran.
        const uint32_t t = pool.threads();
        for (SimdLevel level : levels) {
            setSimdLevel(level);
            const std::string simd = simdLevelName(level);
            records.push_back(
                {"gemm_256x256x256", t, simd,
                 timeKernel([&] { matmul(ga, gb); }, min_ms)});
            records.push_back(
                {"similarity_nt_256x256x128", t, simd,
                 timeKernel([&] { matmulNT(sx, sy); }, min_ms)});
            records.push_back(
                {"similarity_cosine_256x256x128", t, simd,
                 timeKernel(
                     [&] {
                         similarityMatrix(sx, sy,
                                          SimilarityKind::Cosine);
                     },
                     min_ms)});
            records.push_back(
                {"emf_tags_4096x64", t, simd,
                 timeKernel([&] { computeEmfTags(ef, 0); }, min_ms)});
        }
    }

    // Joint-window vs full-streaming locality on a clone-search-shaped
    // pair (small query set against a large candidate bank). Runs
    // single-threaded so the per-thread cache-counter group sees every
    // access; `lines_est` is the deterministic feature-line-load
    // estimate and stands in when perf_event_open is unavailable
    // (containers typically deny it).
    pool.setThreads(1);
    setSimdLevel(levels.back());
    {
        Rng wrng(13);
        Matrix wx(256, 128), wy(8192, 128);
        wx.fillXavier(wrng);
        wy.fillXavier(wrng);
        const std::string simd = simdLevelName(levels.back());
        const double feature_lines =
            static_cast<double>(wx.cols()) * 4.0 / 64.0;

        obs::CacheCounters counters;
        auto locality = [&](bool windowed) {
            Record rec;
            rec.kernel = windowed ? "similarity_windowed_256x8192x128"
                                  : "similarity_streamed_256x8192x128";
            rec.threads = 1;
            rec.simd = simd;
            WindowSchedStats stats;
            auto run = [&] {
                if (windowed) {
                    similarityMatrixWindowed(wx, wy,
                                             SimilarityKind::Cosine,
                                             WindowSchedConfig{},
                                             &stats);
                } else {
                    similarityMatrixStreamed(wx, wy,
                                             SimilarityKind::Cosine);
                }
            };
            rec.nsPerIter = timeKernel(run, min_ms);
            if (windowed) {
                rec.linesEst =
                    (static_cast<double>(stats.xTileLoads) *
                         stats.tileRowsX +
                     static_cast<double>(stats.yTileLoads) *
                         stats.tileRowsY) *
                    feature_lines;
            } else {
                rec.linesEst = static_cast<double>(wx.rows()) *
                               (static_cast<double>(wy.rows()) + 1.0) *
                               feature_lines;
            }
            if (counters.available()) {
                counters.start();
                run();
                obs::CacheCounterSample sample = counters.stop();
                if (sample.valid) {
                    rec.llcMiss =
                        static_cast<double>(sample.llcMisses);
                    rec.l1dMiss =
                        static_cast<double>(sample.l1dMisses);
                }
            }
            records.push_back(std::move(rec));
        };
        locality(true);
        locality(false);
    }

    writeJson(records, out_path);
    if (out_path != "-")
        std::printf("wrote %zu records to %s\n", records.size(),
                    out_path.c_str());
    return 0;
}
