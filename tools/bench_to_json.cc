/**
 * @file
 * bench_to_json — machine-readable kernel benchmark summary.
 *
 * Times the parallel hot kernels (GEMM, A*B^T similarity, cosine
 * normalization, EMF tag hashing) at several pool sizes, plus the
 * pre-parallel naive serial versions (`*_naive`) as a fixed baseline,
 * and writes a JSON array of {kernel, threads, ns_per_iter} records so
 * later PRs can track the perf trajectory mechanically.
 *
 * Usage:
 *   bench_to_json [--out FILE] [--threads LIST] [--min-ms M]
 *
 * Defaults: --out BENCH_kernels.json, --threads 1,2,4, --min-ms 200.
 * `--out -` writes to stdout.
 */

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "emf/emf.hh"
#include "gmn/similarity.hh"
#include "hash/xxhash.hh"
#include "tensor/matrix.hh"

using namespace cegma;

namespace {

struct Record
{
    std::string kernel;
    uint32_t threads;
    double nsPerIter;
};

/**
 * Wall-clock ns per call of `fn`, running it for at least `min_ms`
 * after one untimed warmup call.
 */
template <typename Fn>
double
timeKernel(Fn &&fn, double min_ms)
{
    using clock = std::chrono::steady_clock;
    fn(); // warmup: page in buffers, spin up the pool
    uint64_t iters = 0;
    auto start = clock::now();
    double elapsed_ms = 0.0;
    do {
        fn();
        ++iters;
        elapsed_ms = std::chrono::duration<double, std::milli>(
                         clock::now() - start)
                         .count();
    } while (elapsed_ms < min_ms);
    return elapsed_ms * 1e6 / static_cast<double>(iters);
}

// ---- Pre-parallel reference kernels (the seed implementations) ------

Matrix
matmulNaive(const Matrix &a, const Matrix &b)
{
    Matrix c(a.rows(), b.cols());
    for (size_t i = 0; i < a.rows(); ++i) {
        float *crow = c.row(i);
        for (size_t k = 0; k < a.cols(); ++k) {
            float aik = a.at(i, k);
            if (aik == 0.0f)
                continue;
            const float *brow = b.row(k);
            for (size_t j = 0; j < b.cols(); ++j)
                crow[j] += aik * brow[j];
        }
    }
    return c;
}

float
dotNaive(const float *a, const float *b, size_t n)
{
    float acc = 0.0f;
    for (size_t i = 0; i < n; ++i)
        acc += a[i] * b[i];
    return acc;
}

Matrix
matmulNTNaive(const Matrix &a, const Matrix &b)
{
    Matrix c(a.rows(), b.rows());
    for (size_t i = 0; i < a.rows(); ++i) {
        const float *arow = a.row(i);
        float *crow = c.row(i);
        for (size_t j = 0; j < b.rows(); ++j)
            crow[j] = dotNaive(arow, b.row(j), a.cols());
    }
    return c;
}

std::vector<uint32_t>
emfTagsNaive(const Matrix &features, uint32_t seed)
{
    std::vector<uint32_t> tags(features.rows());
    for (size_t v = 0; v < features.rows(); ++v) {
        tags[v] =
            hashFeatureVector(features.row(v), features.cols(), seed);
    }
    return tags;
}

void
writeJson(const std::vector<Record> &records, const std::string &path)
{
    FILE *out = path == "-" ? stdout : std::fopen(path.c_str(), "w");
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    std::fprintf(out, "[\n");
    for (size_t i = 0; i < records.size(); ++i) {
        std::fprintf(out,
                     "  {\"kernel\": \"%s\", \"threads\": %" PRIu32
                     ", \"ns_per_iter\": %.1f}%s\n",
                     records[i].kernel.c_str(), records[i].threads,
                     records[i].nsPerIter,
                     i + 1 < records.size() ? "," : "");
    }
    std::fprintf(out, "]\n");
    if (out != stdout)
        std::fclose(out);
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    std::string out_path = "BENCH_kernels.json";
    std::vector<uint32_t> thread_counts = {1, 2, 4};
    double min_ms = 200.0;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for '%s'", arg.c_str());
            return argv[++i];
        };
        if (arg == "--out") {
            out_path = next();
        } else if (arg == "--threads") {
            thread_counts.clear();
            const char *list = next();
            for (const char *p = list; *p;) {
                thread_counts.push_back(
                    static_cast<uint32_t>(std::strtoul(p, nullptr, 10)));
                p = std::strchr(p, ',');
                p = p ? p + 1 : "";
            }
            if (thread_counts.empty())
                fatal("empty --threads list");
        } else if (arg == "--min-ms") {
            min_ms = std::strtod(next(), nullptr);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--out FILE|-] [--threads LIST] "
                         "[--min-ms M]\n",
                         argv[0]);
            return 2;
        }
    }

    // Fixtures sized to the acceptance shapes: GEMM 256x256x256 and a
    // 256x256 similarity over 128-wide features.
    Rng rng(11);
    Matrix ga(256, 256), gb(256, 256);
    ga.fillXavier(rng);
    gb.fillXavier(rng);
    Matrix sx(256, 128), sy(256, 128);
    sx.fillXavier(rng);
    sy.fillXavier(rng);
    Matrix ef(4096, 64);
    ef.fillXavier(rng);

    std::vector<Record> records;
    ThreadPool &pool = ThreadPool::instance();

    pool.setThreads(1);
    records.push_back({"gemm_naive_256x256x256", 1,
                       timeKernel([&] { matmulNaive(ga, gb); }, min_ms)});
    records.push_back(
        {"similarity_nt_naive_256x256x128", 1,
         timeKernel([&] { matmulNTNaive(sx, sy); }, min_ms)});
    records.push_back(
        {"emf_tags_naive_4096x64", 1,
         timeKernel([&] { emfTagsNaive(ef, 0); }, min_ms)});

    for (uint32_t requested : thread_counts) {
        pool.setThreads(requested);
        // Record the resolved count: --threads 0 means "hardware/env
        // default", and the JSON should say what actually ran.
        const uint32_t t = pool.threads();
        records.push_back({"gemm_256x256x256", t,
                           timeKernel([&] { matmul(ga, gb); }, min_ms)});
        records.push_back(
            {"similarity_nt_256x256x128", t,
             timeKernel([&] { matmulNT(sx, sy); }, min_ms)});
        records.push_back(
            {"similarity_cosine_256x256x128", t,
             timeKernel(
                 [&] {
                     similarityMatrix(sx, sy, SimilarityKind::Cosine);
                 },
                 min_ms)});
        records.push_back(
            {"emf_tags_4096x64", t,
             timeKernel([&] { computeEmfTags(ef, 0); }, min_ms)});
    }

    writeJson(records, out_path);
    if (out_path != "-")
        std::printf("wrote %zu records to %s\n", records.size(),
                    out_path.c_str());
    return 0;
}
