/**
 * @file
 * cegma_serve — load generator + metrics front end for the serving
 * subsystem (src/serve): build a clone-search corpus, start a
 * `SearchService`, drive it open-loop (Poisson arrivals at --qps) or
 * closed-loop (--clients back-to-back workers), and print the latency
 * and cache metrics table.
 *
 * Usage:
 *   cegma_serve [--model NAME] [--dataset NAME]
 *               [--candidates C] [--queries Q] [--requests N]
 *               [--qps R | --clients K]
 *               [--retrieval=exhaustive|cascade] [--shortlist=C]
 *               [--tag-prune=F] [--tag-level L]
 *               [--batch B] [--flush-us U] [--topk K]
 *               [--pipeline-depth D] [--workspace-mb M]
 *               [--dedup=on|off] [--memo=on|off] [--memo-mb M]
 *               [--threads T] [--seed S] [--json] [--csv] [--prom]
 *               [--trace-out FILE] [--metrics-every SEC]
 *               [--slow-ms MS] [--version]
 *               [--admin-port P] [--slo-ms MS] [--slo-objective F]
 *               [--hw-counters]
 *               [--deadline-ms D] [--shed-watermark N]
 *               [--drain-timeout-ms D] [--retries K] [--backoff-ms B]
 *               [--fault-error-prob P] [--fault-delay-prob P]
 *               [--fault-delay-us U] [--fault-stall-batches N]
 *               [--fault-stall-us U] [--fault-seed S]
 *               [--mutate-rate R] [--mutate-inserts F]
 *               [--mutate-publish N] [--mutate-pool P] [--skew S]
 *
 * Examples:
 *   cegma_serve --model GraphSim --dataset RD-B --qps 50 --requests 200
 *   cegma_serve --clients 8 --requests 400       # closed-loop capacity
 *   cegma_serve --qps 20 --json                  # JSON metrics snapshot
 *   cegma_serve --trace-out trace.json           # Perfetto-loadable trace
 *   cegma_serve --qps 10 --metrics-every 1 --slow-ms 50
 *   cegma_serve --qps 50 --deadline-ms 100 --shed-watermark 64 \
 *               --retries 3 --json       # overload-robust serving
 *   cegma_serve --fault-error-prob 0.3 --retries 5 --json
 *   cegma_serve --dataset AIDS --candidates 100000 \
 *               --retrieval=cascade --shortlist=64   # filter-then-verify
 *   cegma_serve --qps 50 --mutate-rate 0.1 --skew 1.0 \
 *               --json             # live inserts/removes under load
 *   cegma_serve --qps 20 --admin-port 0 --slo-ms 50 \
 *               # live admin plane; curl the printed port's /metrics
 */

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <iostream>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/table.hh"
#include "obs/build_info.hh"
#include "obs/trace.hh"
#include "serve/loadgen.hh"
#include "serve/service.hh"

using namespace cegma;

namespace {

struct Options
{
    ModelId model = ModelId::GraphSim;
    DatasetId dataset = DatasetId::RD_B;
    uint32_t candidates = 8;
    uint32_t queries = 8;
    uint32_t requests = 64;
    double qps = 0.0;      // > 0 selects open loop
    uint32_t clients = 4;  // closed loop otherwise
    uint32_t batch = 16;
    uint32_t flushUs = 2000;
    uint32_t topk = 5;

    // Retrieval cascade (exhaustive by default; see retrieval/).
    RetrievalConfig retrieval;

    // Live-corpus mutation stream (open loop only; off by default).
    double mutateRate = 0.0;     // mutations per query
    double mutateInserts = 0.5;  // insert fraction of mutations
    uint32_t mutatePublish = 1;  // staged mutations per epoch
    uint32_t mutatePool = 0;     // insert pool size; 0 sizes from rate
    double skew = 0.0;           // Zipf skew of the query stream
    bool dedup = true;
    bool memo = true;
    size_t memoMb = 256;
    uint32_t pipelineDepth = 2; // 0 = monolithic batch path
    size_t workspaceMb = 256;   // shared workspace-pool budget
    uint32_t threads = 0;
    uint64_t seed = 7;
    bool json = false;
    bool csv = false;
    bool prom = false;
    std::string traceOut;     // Chrome trace_event JSON path
    double metricsEvery = 0.0; // seconds; > 0 starts the reporter
    double slowMs = 0.0;       // slow-request log threshold

    // Live telemetry plane (all off by default).
    int adminPort = -1;        // admin server port; 0 = ephemeral
    double sloMs = 0.0;        // SLO latency target; 0 disables
    double sloObjective = 0.99; // SLO good-fraction objective
    bool hwCounters = false;   // perf_event cache counters

    // Overload robustness (all off by default).
    double deadlineMs = 0.0;     // per-request deadline budget
    size_t shedWatermark = 0;    // shed depth; 0 disables
    double drainTimeoutMs = 0.0; // bounded shutdown drain
    uint32_t retries = 0;        // client retries past the 1st attempt
    double backoffMs = 1.0;      // base retry backoff

    // Fault injection (all zero = injector not installed).
    FaultConfig faults;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--model NAME] [--dataset NAME]\n"
        "          [--candidates C] [--queries Q] [--requests N]\n"
        "          [--qps R | --clients K]\n"
        "          [--retrieval=exhaustive|cascade] [--shortlist=C]\n"
        "          [--tag-prune=F] [--tag-level L]\n"
        "          [--batch B] [--flush-us U] [--topk K]\n"
        "          [--pipeline-depth D] [--workspace-mb M]\n"
        "          [--dedup=on|off] [--memo=on|off] [--memo-mb M]\n"
        "          [--threads T] [--seed S] [--json] [--csv] [--prom]\n"
        "          [--trace-out FILE] [--metrics-every SEC]\n"
        "          [--slow-ms MS] [--version]\n"
        "          [--admin-port P] [--slo-ms MS]\n"
        "          [--slo-objective F] [--hw-counters]\n"
        "          [--deadline-ms D] [--shed-watermark N]\n"
        "          [--drain-timeout-ms D] [--retries K]\n"
        "          [--backoff-ms B]\n"
        "          [--fault-error-prob P] [--fault-delay-prob P]\n"
        "          [--fault-delay-us U] [--fault-stall-batches N]\n"
        "          [--fault-stall-us U] [--fault-seed S]\n"
        "          [--mutate-rate R] [--mutate-inserts F]\n"
        "          [--mutate-publish N] [--mutate-pool P] [--skew S]\n"
        "models: GMN-Li GraphSim SimGNN\n"
        "datasets: AIDS COLLAB GITHUB RD-B RD-5K RD-12K BIN-CFG\n"
        "--qps > 0 drives open-loop Poisson arrivals; otherwise\n"
        "--clients closed-loop workers issue back-to-back requests.\n"
        "--pipeline-depth D sets the per-stage queue depth of the\n"
        "embed/match/head batch pipeline (default 2; 0 selects the\n"
        "monolithic batch path — bit-identical, no overlap);\n"
        "--workspace-mb caps the shared tensor workspace pool behind\n"
        "the workspace.* gauges.\n"
        "--trace-out writes a Chrome trace_event JSON (Perfetto /\n"
        "chrome://tracing); --prom prints the metrics registry as\n"
        "Prometheus text; --metrics-every prints periodic stats to\n"
        "stderr; --slow-ms logs requests slower than the threshold.\n"
        "--retrieval=cascade serves through the filter-then-verify\n"
        "cascade: WL-tag filter (--tag-prune overlap threshold at\n"
        "--tag-level depth; default 0 = off, opt in for clone-style\n"
        "workloads), coarse model-aware shortlist of --shortlist\n"
        "candidates, exact GMN on the survivors only. Exhaustive mode\n"
        "stays the oracle; cascade trades recall for latency.\n"
        "--admin-port starts the embedded admin/scrape server on\n"
        "127.0.0.1 (0 = ephemeral; the bound address is printed to\n"
        "stdout) serving /metrics /varz /healthz /readyz /tracez\n"
        "/statusz; --slo-ms + --slo-objective define the latency SLO\n"
        "behind the serve.slo.burn.* gauges; --hw-counters polls\n"
        "perf_event cache counters into hw.* gauges (gracefully\n"
        "unavailable in containers).\n"
        "--deadline-ms bounds each request (expired requests fail\n"
        "fast, unscored); --shed-watermark sheds the least-budget\n"
        "queued requests past that depth; --drain-timeout-ms bounds\n"
        "the shutdown drain; --retries enables jittered-backoff\n"
        "client retries; the --fault-* flags install the seeded\n"
        "fault injector (serve/faults.hh) for chaos runs.\n"
        "--mutate-rate R interleaves R corpus mutations per query on\n"
        "the open-loop arrival stream (live inserts from a seeded\n"
        "generator pool, removes of random live entries), published\n"
        "as a new corpus epoch every --mutate-publish staged ops;\n"
        "in-flight batches keep scoring their pinned epoch. --skew\n"
        "draws query indices Zipf(S) instead of round-robin.\n",
        argv0);
    std::exit(2);
}

ModelId
parseModel(const std::string &name, const char *argv0)
{
    for (ModelId id : allModels()) {
        if (modelConfig(id).name == name)
            return id;
    }
    std::fprintf(stderr, "unknown model '%s'\n", name.c_str());
    usage(argv0);
}

DatasetId
parseDataset(const std::string &name, const char *argv0)
{
    for (DatasetId id : extendedDatasets()) {
        if (datasetSpec(id).name == name)
            return id;
    }
    std::fprintf(stderr, "unknown dataset '%s'\n", name.c_str());
    usage(argv0);
}

bool
parseToggle(const std::string &value, const char *flag, const char *argv0)
{
    if (value == "on")
        return true;
    if (value == "off")
        return false;
    std::fprintf(stderr, "%s expects on|off, got '%s'\n", flag,
                 value.c_str());
    usage(argv0);
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg.rfind("--dedup=", 0) == 0) {
            opts.dedup = parseToggle(arg.substr(8), "--dedup", argv[0]);
        } else if (arg.rfind("--retrieval=", 0) == 0) {
            std::string mode = arg.substr(12);
            if (mode == "exhaustive") {
                opts.retrieval.mode = RetrievalMode::Exhaustive;
            } else if (mode == "cascade") {
                opts.retrieval.mode = RetrievalMode::Cascade;
            } else {
                std::fprintf(stderr,
                             "--retrieval expects exhaustive|cascade, "
                             "got '%s'\n",
                             mode.c_str());
                usage(argv[0]);
            }
        } else if (arg.rfind("--shortlist=", 0) == 0) {
            opts.retrieval.shortlist = std::stoul(arg.substr(12));
        } else if (arg == "--shortlist") {
            opts.retrieval.shortlist = std::stoul(next());
        } else if (arg.rfind("--tag-prune=", 0) == 0) {
            opts.retrieval.tagPrune = std::stod(arg.substr(12));
        } else if (arg == "--tag-prune") {
            opts.retrieval.tagPrune = std::stod(next());
        } else if (arg == "--tag-level") {
            opts.retrieval.tagLevel =
                static_cast<unsigned>(std::stoul(next()));
        } else if (arg.rfind("--memo=", 0) == 0) {
            opts.memo = parseToggle(arg.substr(7), "--memo", argv[0]);
        } else if (arg == "--model") {
            opts.model = parseModel(next(), argv[0]);
        } else if (arg == "--dataset") {
            opts.dataset = parseDataset(next(), argv[0]);
        } else if (arg == "--candidates") {
            opts.candidates =
                static_cast<uint32_t>(std::stoul(next()));
        } else if (arg == "--queries") {
            opts.queries = static_cast<uint32_t>(std::stoul(next()));
        } else if (arg == "--requests") {
            opts.requests = static_cast<uint32_t>(std::stoul(next()));
        } else if (arg == "--qps") {
            opts.qps = std::stod(next());
        } else if (arg == "--clients") {
            opts.clients = static_cast<uint32_t>(std::stoul(next()));
        } else if (arg == "--batch") {
            opts.batch = static_cast<uint32_t>(std::stoul(next()));
        } else if (arg == "--flush-us") {
            opts.flushUs = static_cast<uint32_t>(std::stoul(next()));
        } else if (arg == "--topk") {
            opts.topk = static_cast<uint32_t>(std::stoul(next()));
        } else if (arg == "--memo-mb") {
            opts.memoMb = std::stoul(next());
        } else if (arg == "--pipeline-depth") {
            opts.pipelineDepth =
                static_cast<uint32_t>(std::stoul(next()));
        } else if (arg == "--workspace-mb") {
            opts.workspaceMb = std::stoul(next());
        } else if (arg == "--threads") {
            opts.threads = static_cast<uint32_t>(std::stoul(next()));
        } else if (arg == "--seed") {
            opts.seed = std::stoull(next());
        } else if (arg == "--json") {
            opts.json = true;
        } else if (arg == "--csv") {
            opts.csv = true;
        } else if (arg == "--prom") {
            opts.prom = true;
        } else if (arg == "--trace-out") {
            opts.traceOut = next();
        } else if (arg == "--metrics-every") {
            opts.metricsEvery = std::stod(next());
        } else if (arg == "--slow-ms") {
            opts.slowMs = std::stod(next());
        } else if (arg.rfind("--admin-port=", 0) == 0) {
            opts.adminPort = std::stoi(arg.substr(13));
        } else if (arg == "--admin-port") {
            opts.adminPort = std::stoi(next());
        } else if (arg == "--slo-ms") {
            opts.sloMs = std::stod(next());
        } else if (arg == "--slo-objective") {
            opts.sloObjective = std::stod(next());
        } else if (arg == "--hw-counters") {
            opts.hwCounters = true;
        } else if (arg == "--deadline-ms") {
            opts.deadlineMs = std::stod(next());
        } else if (arg == "--shed-watermark") {
            opts.shedWatermark = std::stoul(next());
        } else if (arg == "--drain-timeout-ms") {
            opts.drainTimeoutMs = std::stod(next());
        } else if (arg == "--retries") {
            opts.retries = static_cast<uint32_t>(std::stoul(next()));
        } else if (arg == "--backoff-ms") {
            opts.backoffMs = std::stod(next());
        } else if (arg == "--fault-error-prob") {
            opts.faults.errorProb = std::stod(next());
        } else if (arg == "--fault-delay-prob") {
            opts.faults.delayProb = std::stod(next());
        } else if (arg == "--fault-delay-us") {
            opts.faults.delayMicros =
                static_cast<uint32_t>(std::stoul(next()));
        } else if (arg == "--fault-stall-batches") {
            opts.faults.stallBatches =
                static_cast<uint32_t>(std::stoul(next()));
        } else if (arg == "--fault-stall-us") {
            opts.faults.stallMicros =
                static_cast<uint32_t>(std::stoul(next()));
        } else if (arg == "--fault-seed") {
            opts.faults.seed = std::stoull(next());
        } else if (arg == "--mutate-rate") {
            opts.mutateRate = std::stod(next());
        } else if (arg == "--mutate-inserts") {
            opts.mutateInserts = std::stod(next());
        } else if (arg == "--mutate-publish") {
            opts.mutatePublish =
                static_cast<uint32_t>(std::stoul(next()));
        } else if (arg == "--mutate-pool") {
            opts.mutatePool =
                static_cast<uint32_t>(std::stoul(next()));
        } else if (arg == "--skew") {
            opts.skew = std::stod(next());
        } else if (arg == "--version") {
            std::printf("%s\n", obs::buildInfoString().c_str());
            std::exit(0);
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage(argv[0]);
        }
    }
    if (opts.candidates == 0 || opts.queries == 0 || opts.requests == 0)
        usage(argv[0]);
    return opts;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    Options opts = parseArgs(argc, argv);
    if (opts.threads != 0)
        ThreadPool::instance().setThreads(opts.threads);

    CloneSearchCorpus corpus = makeCloneSearchCorpus(
        opts.dataset, opts.queries, opts.candidates, opts.seed);

    ServeConfig config;
    config.model = opts.model;
    config.dedup = opts.dedup;
    config.memo = opts.memo;
    config.memoBytes = opts.memoMb << 20;
    config.maxBatch = opts.batch;
    config.flushMicros = opts.flushUs;
    config.topK = opts.topk;
    config.pipelineDepth = opts.pipelineDepth;
    config.workspaceMb = opts.workspaceMb;
    config.retrieval = opts.retrieval;
    config.slowMs = opts.slowMs;
    config.requestDeadlineMs = opts.deadlineMs;
    config.shedWatermark = opts.shedWatermark;
    config.drainTimeoutMs = opts.drainTimeoutMs;
    config.adminPort = opts.adminPort;
    config.slo.targetMs = opts.sloMs;
    config.slo.objective = opts.sloObjective;
    config.hwCounters = opts.hwCounters;

    // Install the seeded fault injector only when a fault was asked
    // for; a null hook keeps the hot path at one branch per batch.
    std::optional<FaultInjector> injector;
    if (opts.faults.errorProb > 0.0 || opts.faults.delayProb > 0.0 ||
        opts.faults.stallBatches > 0) {
        injector.emplace(opts.faults);
        config.faults = &*injector;
    }

    RetryPolicy retry;
    retry.maxAttempts = opts.retries + 1;
    retry.baseBackoffMs = opts.backoffMs;
    retry.deadlineMs = opts.deadlineMs;

    if (!opts.traceOut.empty())
        obs::setTracingEnabled(true);

    bool mutating = opts.mutateRate > 0.0 || opts.skew > 0.0;
    if (mutating && opts.qps <= 0.0) {
        std::fprintf(stderr, "--mutate-rate/--skew require open-loop "
                             "mode (--qps > 0)\n");
        return 2;
    }

    SearchService service(config, corpus.candidates,
                          corpus.candidateIds);

    if (opts.adminPort >= 0) {
        if (service.adminPort() < 0) {
            std::fprintf(stderr, "admin: failed to start\n");
            return 1;
        }
        // Printed to stdout (and flushed) before the load starts so
        // scripts can scrape the ephemeral port while the run is live.
        std::printf("admin: listening on 127.0.0.1:%d\n",
                    service.adminPort());
        std::fflush(stdout);
    }

    // Periodic stats reporter: one stderr line per interval while the
    // load runs (single fwrite per line — see common/logging.cc).
    std::mutex reporter_mutex;
    std::condition_variable reporter_cv;
    bool reporter_stop = false;
    std::thread reporter;
    if (opts.metricsEvery > 0.0) {
        reporter = std::thread([&] {
            std::unique_lock<std::mutex> lock(reporter_mutex);
            auto interval =
                std::chrono::duration<double>(opts.metricsEvery);
            while (!reporter_cv.wait_for(
                lock, interval, [&] { return reporter_stop; })) {
                MetricsSnapshot s = service.metrics();
                std::fprintf(
                    stderr,
                    "stats: %llu/%llu done, %.1f qps, p50 %.2f ms, "
                    "p95 %.2f ms, queue %llu, cache hit %.0f%%\n",
                    static_cast<unsigned long long>(s.completed),
                    static_cast<unsigned long long>(s.submitted),
                    s.qps, s.latencyP50Ms, s.latencyP95Ms,
                    static_cast<unsigned long long>(s.queueDepth),
                    100.0 * s.cacheHitRate);
            }
        });
    }

    LoadGenResult run;
    if (mutating) {
        // Seeded insert pool: enough fresh graphs to satisfy the
        // offered insert stream (sized from the rate when not given).
        MutationMix mix;
        mix.perQuery = opts.mutateRate;
        mix.insertFraction = opts.mutateInserts;
        mix.publishBatch = opts.mutatePublish;
        mix.zipfSkew = opts.skew;
        uint32_t pool_size =
            opts.mutatePool > 0
                ? opts.mutatePool
                : static_cast<uint32_t>(
                      opts.mutateRate * opts.requests + 1.0);
        MutationPool pool =
            makeMutationPool(opts.dataset, pool_size, opts.seed);
        MutationPlan plan =
            planMutations(corpus.candidateIds, pool, opts.requests,
                          mix, opts.seed + 11);
        run = runOpenLoopMutating(service, corpus.queries, pool, plan,
                                  mix, opts.requests, opts.qps,
                                  opts.seed, retry);
        std::fprintf(
            stderr,
            "corpus: epoch %llu, %llu live, %llu inserts, "
            "%llu removes, %llu tombstones, %llu epochs reclaimed, "
            "%llu compactions\n",
            static_cast<unsigned long long>(run.metrics.corpusEpoch),
            static_cast<unsigned long long>(run.metrics.corpusLive),
            static_cast<unsigned long long>(run.metrics.corpusInserts),
            static_cast<unsigned long long>(run.metrics.corpusRemoves),
            static_cast<unsigned long long>(
                run.metrics.corpusTombstones),
            static_cast<unsigned long long>(
                run.metrics.corpusEpochsReclaimed),
            static_cast<unsigned long long>(
                run.metrics.corpusCompactions));
    } else if (opts.qps > 0.0) {
        run = runOpenLoop(service, corpus.queries, opts.requests,
                          opts.qps, opts.seed, retry);
    } else {
        run = runClosedLoop(service, corpus.queries, opts.requests,
                            opts.clients, retry, opts.seed);
    }

    if (reporter.joinable()) {
        {
            std::lock_guard<std::mutex> lock(reporter_mutex);
            reporter_stop = true;
        }
        reporter_cv.notify_all();
        reporter.join();
    }
    service.shutdown();
    MetricsSnapshot snap = run.metrics;

    if (!opts.traceOut.empty()) {
        size_t spans = obs::writeChromeTrace(opts.traceOut);
        std::fprintf(stderr, "trace: %zu spans -> %s\n", spans,
                     opts.traceOut.c_str());
    }

    if (opts.prom) {
        std::fputs(service.registry().snapshot().toPrometheus().c_str(),
                   stdout);
        return 0;
    }

    if (opts.json) {
        std::printf("%s\n", snap.toJson().c_str());
        return 0;
    }

    std::string mode =
        opts.qps > 0.0
            ? "open@" + TextTable::fmt(opts.qps, 1) + "qps"
            : "closed x" + std::to_string(opts.clients);
    TextTable table({"model", "dataset", "mode", "reqs", "ok", "rej",
                     "exp", "shed", "retry", "qps", "p50 ms", "p95 ms",
                     "p99 ms", "batch", "hit%", "skip%", "pruned%",
                     "evict", "cache"});
    table.addRow({
        modelConfig(opts.model).name,
        datasetSpec(opts.dataset).name,
        mode,
        std::to_string(snap.submitted),
        std::to_string(snap.completed),
        std::to_string(snap.rejected),
        std::to_string(snap.expired),
        std::to_string(snap.shed),
        std::to_string(snap.retries),
        TextTable::fmt(run.achievedQps, 2),
        TextTable::fmt(snap.latencyP50Ms, 2),
        TextTable::fmt(snap.latencyP95Ms, 2),
        TextTable::fmt(snap.latencyP99Ms, 2),
        TextTable::fmt(snap.batchMean, 2),
        TextTable::fmtPct(snap.cacheHitRate),
        TextTable::fmtPct(snap.dedupSkipRatio),
        TextTable::fmtPct(snap.retrievalPruneRatio),
        std::to_string(snap.cacheEvictions),
        TextTable::fmtBytes(static_cast<double>(snap.cacheBytes)),
    });
    if (opts.csv) {
        table.printCsv(std::cout);
    } else {
        table.print(std::cout);
    }
    return 0;
}
