#!/usr/bin/env bash
# Tier-1 CI in one command: release build + full test suite, then the
# ThreadSanitizer configuration of the same suite at CEGMA_THREADS=8
# (the determinism/bit-exactness contracts are only meaningful if the
# parallel runtime is race-free), then an ASan+UBSan pass of the same
# suite for memory errors the release build would hide.
#
# Usage: scripts/ci.sh [JOBS]   (default: all cores)

set -euo pipefail
cd "$(dirname "$0")/.."

jobs="${1:-$(nproc)}"

echo "== tier-1: release build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"

echo "== tier-1: ctest =="
ctest --test-dir build --output-on-failure -j "$jobs"

# Tracing-disabled overhead smoke: the observability layer must be
# free when off. The gtest bound (2 us/scope, vs the ~10 ns a relaxed
# load costs) only trips on a structural regression, e.g. a lock on
# the disabled path.
echo "== tier-1: tracing-disabled overhead smoke =="
./build/tests/obs_test \
    --gtest_filter='TraceTest.DisabledScopeOverheadIsNegligible'

echo "== tsan: instrumented build =="
cmake -B build-tsan -S . -DCEGMA_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$jobs"

# scripts/tsan.supp masks one known false positive from the
# uninstrumented libstdc++ exception_ptr refcount (see the file).
export TSAN_OPTIONS="suppressions=$PWD/scripts/tsan.supp"

echo "== tsan: ctest (CEGMA_THREADS=8) =="
CEGMA_THREADS=8 ctest --test-dir build-tsan --output-on-failure -j "$jobs"

# The serving subsystem's concurrent submit/shutdown paths get an
# explicit second TSan pass: serve_test is the suite that races
# producers against the dispatcher and the batcher's close().
echo "== tsan: serve_test (CEGMA_THREADS=8) =="
CEGMA_THREADS=8 ctest --test-dir build-tsan -R serve_test \
    --output-on-failure

# Fault injection under TSan: the overload paths (deadline expiry,
# shedding, injected errors, bounded drain, scrape-vs-shutdown) add
# locking the plain suite never exercises under contention.
echo "== tsan: fault-injection tests (CEGMA_THREADS=8) =="
CEGMA_THREADS=8 ./build-tsan/tests/serve_test \
    --gtest_filter='Overload.*:MicroBatcher.*'

echo "== asan: instrumented build =="
cmake -B build-asan -S . -DCEGMA_SANITIZE=address >/dev/null
cmake --build build-asan -j "$jobs"

echo "== asan: ctest =="
ctest --test-dir build-asan --output-on-failure -j "$jobs"

# Fault injection under ASan+UBSan: the teardown-scrape test only
# proves the provider-gauge lifetime fix when a lifetime slip is a
# hard failure, and the NaN topKHits regression is UB by definition.
echo "== asan: fault-injection tests =="
./build-asan/tests/serve_test \
    --gtest_filter='Overload.*:TopKHits.*'

echo "== ci.sh: all green =="
