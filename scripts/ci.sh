#!/usr/bin/env bash
# Tier-1 CI in one command: release build + full test suite (once with
# the default SIMD dispatch, once forced to the scalar oracle via
# CEGMA_SIMD=scalar), then the
# ThreadSanitizer configuration of the same suite at CEGMA_THREADS=8
# (the determinism/bit-exactness contracts are only meaningful if the
# parallel runtime is race-free), then an ASan+UBSan pass of the same
# suite for memory errors the release build would hide.
#
# Usage: scripts/ci.sh [JOBS]   (default: all cores)

set -euo pipefail
cd "$(dirname "$0")/.."

jobs="${1:-$(nproc)}"

echo "== tier-1: release build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"

echo "== tier-1: ctest =="
ctest --test-dir build --output-on-failure -j "$jobs"

# Tracing-disabled overhead smoke: the observability layer must be
# free when off. The gtest bound (2 us/scope, vs the ~10 ns a relaxed
# load costs) only trips on a structural regression, e.g. a lock on
# the disabled path.
echo "== tier-1: tracing-disabled overhead smoke =="
./build/tests/obs_test \
    --gtest_filter='TraceTest.DisabledScopeOverheadIsNegligible'

# Retrieval-cascade recall gate: rebuild the RetrievalGate fixture at
# a 10^4-candidate corpus (CI-sized; the 10^5–10^6 sweep lives in
# `bench_to_json --retrieval`) and assert tie-aware cascade recall@10
# >= 0.99 against the exhaustive oracle. This is the contract that
# lets the cascade ship as a serving mode: exact scores stay
# bit-identical (proved by CascadeService.* above), and the shortlist
# keeps effectively all of the oracle's top-10 score mass.
echo "== tier-1: retrieval recall gate (10^4 corpus) =="
CEGMA_RETRIEVAL_CI_CANDIDATES=10000 ./build/tests/retrieval_test \
    --gtest_filter='RetrievalGate.*'

# Live-corpus mutation gate: a seeded interleaved mutation+query
# workload at 8 pool threads must return, for every request, the
# pinned epoch's exact candidate list and scores bit-identical to a
# serial oracle model replaying that epoch offline — in exhaustive
# mode and against an offline-rebuilt cascade index — with epochs
# actually retiring (`corpus.epochs_reclaimed` > 0) along the way.
echo "== tier-1: live-corpus mutation gate =="
./build/tests/corpus_test --gtest_filter='LiveGate.*'

# Forced-scalar tier: the whole suite again with the SIMD dispatch
# pinned to the scalar oracle. This proves the dispatcher honors the
# override everywhere and that no caller depends on the AVX2 path —
# the bit-identity contract (tests/simd_test.cc) is only as good as
# the scalar kernels actually running when asked.
echo "== tier-1: ctest (CEGMA_SIMD=scalar) =="
CEGMA_SIMD=scalar ctest --test-dir build --output-on-failure -j "$jobs"

echo "== tsan: instrumented build =="
cmake -B build-tsan -S . -DCEGMA_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$jobs"

# scripts/tsan.supp masks one known false positive from the
# uninstrumented libstdc++ exception_ptr refcount (see the file).
export TSAN_OPTIONS="suppressions=$PWD/scripts/tsan.supp"

echo "== tsan: ctest (CEGMA_THREADS=8) =="
CEGMA_THREADS=8 ctest --test-dir build-tsan --output-on-failure -j "$jobs"

# The serving subsystem's concurrent submit/shutdown paths get an
# explicit second TSan pass: serve_test is the suite that races
# producers against the dispatcher and the batcher's close().
echo "== tsan: serve_test (CEGMA_THREADS=8) =="
CEGMA_THREADS=8 ctest --test-dir build-tsan -R serve_test \
    --output-on-failure

# Fault injection under TSan: the overload paths (deadline expiry,
# shedding, injected errors, bounded drain, scrape-vs-shutdown) add
# locking the plain suite never exercises under contention.
echo "== tsan: fault-injection tests (CEGMA_THREADS=8) =="
CEGMA_THREADS=8 ./build-tsan/tests/serve_test \
    --gtest_filter='Overload.*:MicroBatcher.*'

# Pipelined execution under TSan: the StagePipeline unit tests plus
# the full bit-identity grid (threads {1,2,8} x batch {1,4,32} x
# pipeline depth {0,1,2,4}) at 8 pool threads. The determinism bar —
# pipelining changes when a batch's stages run, never what they
# compute — is only meaningful if the stage workers, bounded queues,
# and workspace-pool recycling are race-free.
echo "== tsan: pipeline bit-identity grid (CEGMA_THREADS=8) =="
CEGMA_THREADS=8 ./build-tsan/tests/serve_test \
    --gtest_filter='Pipeline.*'

# SIMD kernels under TSan: the bit-identity grid runs the dispatched
# kernels and the joint-window scheduler at 8 pool threads, so any
# race in the per-tile parallelFor chunking or the dispatch atomics
# surfaces here.
echo "== tsan: simd_test (CEGMA_THREADS=8) =="
CEGMA_THREADS=8 ctest --test-dir build-tsan -R simd_test \
    --output-on-failure

# Live-corpus mutation paths under TSan: the snapshot storms race
# pinned readers against insert/remove/flush/compaction, and the
# LiveGate workloads race the mutator thread against the dispatcher's
# scoring batches — the epoch consistency contract is only meaningful
# if those paths are race-free.
echo "== tsan: live-corpus gate (CEGMA_THREADS=8) =="
CEGMA_THREADS=8 ./build-tsan/tests/corpus_test \
    --gtest_filter='LiveGate.*:LiveCorpusStorm.*'

echo "== asan: instrumented build =="
cmake -B build-asan -S . -DCEGMA_SANITIZE=address >/dev/null
cmake --build build-asan -j "$jobs"

echo "== asan: ctest =="
ctest --test-dir build-asan --output-on-failure -j "$jobs"

# Fault injection under ASan+UBSan: the teardown-scrape test only
# proves the provider-gauge lifetime fix when a lifetime slip is a
# hard failure, and the NaN topKHits regression is UB by definition.
echo "== asan: fault-injection tests =="
./build-asan/tests/serve_test \
    --gtest_filter='Overload.*:TopKHits.*'

# Pipelined execution under ASan+UBSan: every batch's tensors now come
# from the recycling workspace pool, so a stage reading a block after
# release — or the pool handing out a block still in use — is exactly
# the class of bug this tier turns into a hard failure.
echo "== asan: pipeline bit-identity grid =="
./build-asan/tests/serve_test --gtest_filter='Pipeline.*'

# SIMD kernels under ASan+UBSan: the AVX2 loads are unaligned by
# design (loadu on arbitrary row offsets, ragged tails, the 64-byte
# allocator's promises) — UBSan proves they are clean, ASan catches
# any tail over-read the masked drains could hide.
echo "== asan: simd_test =="
ctest --test-dir build-asan -R simd_test --output-on-failure

# Live-corpus gate under ASan+UBSan: chunked slot storage, tombstone
# compaction, and memo invalidation reclaim memory while snapshots
# may still read it — a use-after-reclaim is exactly what this tier
# turns into a hard failure.
echo "== asan: live-corpus gate =="
./build-asan/tests/corpus_test \
    --gtest_filter='LiveGate.*:LiveCorpusStorm.*'

# Admin-plane smoke under ASan+UBSan: a real cegma_serve process on an
# ephemeral admin port (printed on stdout), scraped with curl *while
# the open-loop workload is running*, then waited to a clean exit —
# the whole accept-loop/handler/shutdown path in one end-to-end pass
# where any lifetime slip is a hard failure.
echo "== asan: admin-plane smoke (ephemeral port, curl under load) =="
smoke_log="$(mktemp)"
./build-asan/tools/cegma_serve --qps 25 --requests 300 \
    --admin-port 0 --slo-ms 50 >"$smoke_log" 2>&1 &
smoke_pid=$!
smoke_port=""
for _ in $(seq 1 100); do
    smoke_port="$(sed -n \
        's/^admin: listening on 127\.0\.0\.1:\([0-9]\+\)$/\1/p' \
        "$smoke_log")"
    [ -n "$smoke_port" ] && break
    sleep 0.1
done
if [ -z "$smoke_port" ]; then
    echo "admin smoke: no port announced on stdout"
    cat "$smoke_log"
    kill "$smoke_pid" 2>/dev/null || true
    exit 1
fi
# Plain grep (not -q) so the reader drains the whole body — grep -q
# exits at the first match and the resulting EPIPE would fail curl
# under pipefail.
smoke="http://127.0.0.1:$smoke_port"
curl -fsS "$smoke/healthz" | grep -x 'ok'                         >/dev/null
curl -fsS "$smoke/readyz"  | grep -x 'ready'                      >/dev/null
curl -fsS "$smoke/metrics" | grep    '^cegma_build_info{'         >/dev/null
curl -fsS "$smoke/metrics" | grep    '^serve_win1m_p99_us '       >/dev/null
curl -fsS "$smoke/metrics" | grep    '^serve_slo_burn_win1m '     >/dev/null
curl -fsS "$smoke/varz"    | grep    '"serve.requests.completed"' >/dev/null
curl -fsS "$smoke/tracez"  | grep    '"slowest"'                  >/dev/null
curl -fsS "$smoke/statusz" | grep    '"draining": false'          >/dev/null
wait "$smoke_pid"   # workload finishes and shuts down cleanly
rm -f "$smoke_log"

echo "== ci.sh: all green =="
